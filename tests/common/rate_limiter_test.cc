// TokenBucket (GCRA) and TenantRateLimiters unit tests. All timing uses
// the explicit now_ns overload, so nothing here depends on wall-clock
// speed.

#include "common/rate_limiter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace f2db {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ULL;

TEST(RateLimitTest, BurstThenDenialAtTheConfiguredCapacity) {
  TokenBucket bucket(/*tokens_per_second=*/10.0, /*burst=*/3.0);
  const std::uint64_t t0 = kSecond;  // arbitrary epoch on the caller clock
  std::uint64_t retry = 0;
  // The full burst conforms back-to-back...
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  // ...and the next request at the same instant is denied with a hint.
  EXPECT_FALSE(bucket.TryAcquire(t0, &retry));
  EXPECT_GT(retry, 0u);
  // At 10 tokens/s one token emerges every 100ms; the hint says so.
  EXPECT_EQ(retry, kSecond / 10);
  // Waiting out the hint makes exactly one more request conform.
  EXPECT_TRUE(bucket.TryAcquire(t0 + retry, &retry));
  EXPECT_FALSE(bucket.TryAcquire(t0 + kSecond / 10, &retry));
}

TEST(RateLimitTest, SustainedRateIsHonored) {
  TokenBucket bucket(/*tokens_per_second=*/5.0, /*burst=*/1.0);
  std::uint64_t now = kSecond;
  std::size_t conforming = 0;
  // Offer 100 requests over 2 seconds (50/s against a 5/s budget).
  for (int i = 0; i < 100; ++i) {
    if (bucket.TryAcquire(now, nullptr)) ++conforming;
    now += 20'000'000;  // 20ms apart
  }
  // 2 seconds at 5/s plus the initial burst token.
  EXPECT_GE(conforming, 10u);
  EXPECT_LE(conforming, 11u);
}

TEST(RateLimitTest, IdleBucketRefillsUpToBurstOnly) {
  TokenBucket bucket(/*tokens_per_second=*/10.0, /*burst=*/2.0);
  const std::uint64_t t0 = kSecond;
  EXPECT_TRUE(bucket.TryAcquire(t0, nullptr));
  EXPECT_TRUE(bucket.TryAcquire(t0, nullptr));
  EXPECT_FALSE(bucket.TryAcquire(t0, nullptr));
  // A long idle period refills to the cap, not beyond it: exactly the
  // burst conforms again, no matter how long the bucket slept.
  const std::uint64_t later = t0 + 100 * kSecond;
  EXPECT_TRUE(bucket.TryAcquire(later, nullptr));
  EXPECT_TRUE(bucket.TryAcquire(later, nullptr));
  EXPECT_FALSE(bucket.TryAcquire(later, nullptr));
}

TEST(RateLimitTest, MisconfiguredBucketsAreClamped) {
  // Zero/negative rates degrade to "almost never" rather than dividing by
  // zero; bursts below one token are raised to one so the bucket can
  // conform at all.
  TokenBucket zero_rate(0.0, 1.0);
  EXPECT_GT(zero_rate.tokens_per_second(), 0.0);
  TokenBucket tiny_burst(10.0, 0.25);
  EXPECT_GE(tiny_burst.burst(), 1.0);
  EXPECT_TRUE(tiny_burst.TryAcquire(kSecond, nullptr));
}

TEST(RateLimitTest, ConcurrentAcquiresNeverExceedTheBudget) {
  TokenBucket bucket(/*tokens_per_second=*/1.0, /*burst=*/8.0);
  const std::uint64_t t0 = kSecond;
  std::atomic<std::size_t> conforming{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        if (bucket.TryAcquire(t0, nullptr)) {
          conforming.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // 64 competing acquires at one instant: exactly the burst conforms.
  EXPECT_EQ(conforming.load(), 8u);
}

TEST(RateLimitTest, TenantRegistryIsolatesBucketsAndKeepsPointersStable) {
  TenantRateLimiters limiters(/*tokens_per_second=*/10.0, /*burst=*/1.0);
  TokenBucket* alpha = limiters.BucketFor("alpha");
  TokenBucket* beta = limiters.BucketFor("beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_NE(alpha, beta);
  // Same tenant, same bucket — the cached pointer stays valid.
  EXPECT_EQ(limiters.BucketFor("alpha"), alpha);
  EXPECT_EQ(limiters.num_tenants(), 2u);
  // Draining alpha's budget does not touch beta's.
  const std::uint64_t t0 = kSecond;
  EXPECT_TRUE(alpha->TryAcquire(t0, nullptr));
  EXPECT_FALSE(alpha->TryAcquire(t0, nullptr));
  EXPECT_TRUE(beta->TryAcquire(t0, nullptr));
  // The empty string is the default tenant, not an error.
  EXPECT_NE(limiters.BucketFor(""), nullptr);
  EXPECT_EQ(limiters.num_tenants(), 3u);
}

TEST(RateLimitTest, DefaultBurstIsOneSecondsWorth) {
  TenantRateLimiters limiters(/*tokens_per_second=*/25.0, /*burst=*/0.0);
  EXPECT_DOUBLE_EQ(limiters.BucketFor("t")->burst(), 25.0);
}

}  // namespace
}  // namespace f2db
