#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace f2db {
namespace {

TEST(ParseCsv, BasicWithHeader) {
  auto doc = ParseCsv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc.value().rows.size(), 2u);
  EXPECT_EQ(doc.value().rows[1][1], "4");
}

TEST(ParseCsv, NoHeader) {
  auto doc = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value().header.empty());
  EXPECT_EQ(doc.value().rows.size(), 2u);
}

TEST(ParseCsv, QuotedFieldsWithCommasAndQuotes) {
  auto doc = ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\nx,y\n", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "a,b");
  EXPECT_EQ(doc.value().rows[0][1], "say \"hi\"");
}

TEST(ParseCsv, CrLfLineEndings) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n", true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "1");
}

TEST(ParseCsv, SkipsBlankLines) {
  auto doc = ParseCsv("1,2\n\n3,4\n", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows.size(), 2u);
}

TEST(ParseCsv, MissingTrailingNewlineOk) {
  auto doc = ParseCsv("1,2\n3,4", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows.size(), 2u);
}

TEST(ParseCsv, RejectsRaggedRows) {
  auto doc = ParseCsv("1,2\n3\n", false);
  EXPECT_FALSE(doc.ok());
}

TEST(ParseCsv, RejectsUnterminatedQuote) {
  auto doc = ParseCsv("\"abc\n", false);
  EXPECT_FALSE(doc.ok());
}

TEST(WriteCsv, RoundTrip) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  doc.rows = {{"1", "hello, world"}, {"2", "quote\"d"}};
  const std::string text = WriteCsv(doc);
  auto parsed = ParseCsv(text, true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header, doc.header);
  EXPECT_EQ(parsed.value().rows, doc.rows);
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_csv_test.csv").string();
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"a", "1"}, {"b", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  auto read = ReadCsvFile(path, true);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileIsNotFound) {
  auto read = ReadCsvFile("/nonexistent/definitely/missing.csv", true);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace f2db
