#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace f2db {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaling) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleDiscreteRespectsWeights) {
  Rng rng(14);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.Split();
  // Child stream differs from continued parent stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.NextUint64() != child.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(15), b(15);
  Rng ca = a.Split();
  Rng cb = b.Split();
  EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
}

}  // namespace
}  // namespace f2db
