#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

namespace f2db {
namespace {

using failpoint::Policy;

F2DB_DEFINE_FAILPOINT(kTestSite, "test.failpoint_site");

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisableAll(); }
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(FailpointTest, OffByDefault) {
  EXPECT_FALSE(failpoint::AnyEnabled());
  EXPECT_FALSE(failpoint::Triggered(kTestSite));
  EXPECT_EQ(failpoint::Triggers(kTestSite), 0u);
}

TEST_F(FailpointTest, StaticRegistrationShowsUpInRegisteredSites) {
  const std::vector<std::string> sites = failpoint::RegisteredSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.failpoint_site"),
            sites.end());
}

TEST_F(FailpointTest, AlwaysTriggersEveryEvaluation) {
  failpoint::Enable(kTestSite, Policy::Always());
  EXPECT_TRUE(failpoint::AnyEnabled());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(failpoint::Triggered(kTestSite));
  EXPECT_EQ(failpoint::Evaluations(kTestSite), 5u);
  EXPECT_EQ(failpoint::Triggers(kTestSite), 5u);
}

TEST_F(FailpointTest, MaxTriggersDisarmsAfterBudget) {
  failpoint::Enable(kTestSite, Policy::Always(/*max_triggers=*/2));
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
  EXPECT_FALSE(failpoint::Triggered(kTestSite));
  EXPECT_FALSE(failpoint::Triggered(kTestSite));
  EXPECT_EQ(failpoint::Triggers(kTestSite), 2u);
  EXPECT_EQ(failpoint::Evaluations(kTestSite), 4u);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiplesOfN) {
  failpoint::Enable(kTestSite, Policy::EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(failpoint::Triggered(kTestSite));
  const std::vector<bool> expected{false, false, true, false, false,
                                   true,  false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [&](std::uint64_t seed) {
    failpoint::Enable(kTestSite, Policy::WithProbability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(failpoint::Triggered(kTestSite));
    }
    return fired;
  };
  EXPECT_EQ(run(7), run(7));  // re-arming resets the stream: identical
  EXPECT_NE(run(7), run(8));  // a different seed gives a different stream
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  failpoint::Enable(kTestSite, Policy::WithProbability(0.0));
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(failpoint::Triggered(kTestSite));
  failpoint::Enable(kTestSite, Policy::WithProbability(1.0));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(failpoint::Triggered(kTestSite));
}

TEST_F(FailpointTest, DisableStopsTriggeringAndClearsGuard) {
  failpoint::Enable(kTestSite, Policy::Always());
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
  failpoint::Disable(kTestSite);
  EXPECT_FALSE(failpoint::AnyEnabled());
  EXPECT_FALSE(failpoint::Triggered(kTestSite));
}

TEST_F(FailpointTest, InjectedFailureIsUnavailableAndNamesTheSite) {
  const Status status = failpoint::InjectedFailure(kTestSite);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("test.failpoint_site"), std::string::npos);
}

TEST_F(FailpointTest, EnableFromSpecArmsMultipleSites) {
  ASSERT_TRUE(failpoint::EnableFromSpec(
                  "test.failpoint_site = always:1 ; test.spec_site=nth:2")
                  .ok());
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
  EXPECT_FALSE(failpoint::Triggered(kTestSite));  // max_triggers=1
  EXPECT_FALSE(failpoint::Triggered("test.spec_site"));
  EXPECT_TRUE(failpoint::Triggered("test.spec_site"));
}

TEST_F(FailpointTest, EnableFromSpecParsesProbabilityWithSeed) {
  ASSERT_TRUE(
      failpoint::EnableFromSpec("test.failpoint_site=prob:1.0:9").ok());
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
}

TEST_F(FailpointTest, MalformedSpecRejectedWithoutArmingAnything) {
  EXPECT_FALSE(failpoint::EnableFromSpec("test.failpoint_site=always;oops")
                   .ok());
  EXPECT_FALSE(failpoint::EnableFromSpec("test.failpoint_site=nth:0").ok());
  EXPECT_FALSE(failpoint::EnableFromSpec("=always").ok());
  EXPECT_FALSE(failpoint::EnableFromSpec("test.failpoint_site=prob:1.5").ok());
  EXPECT_FALSE(failpoint::AnyEnabled());  // atomic spec: nothing armed
}

TEST_F(FailpointTest, ScopedDisableAllCleansUp) {
  {
    failpoint::ScopedDisableAll guard;
    failpoint::Enable(kTestSite, Policy::Always());
    EXPECT_TRUE(failpoint::AnyEnabled());
  }
  EXPECT_FALSE(failpoint::AnyEnabled());
}

/// RAII env-var override so InitFromEnv tests cannot leak state into other
/// tests in this binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST_F(FailpointTest, InitFromEnvAppliesWellFormedSpec) {
  ScopedEnv spec("F2DB_FAILPOINTS", "test.failpoint_site=always");
  EXPECT_EQ(failpoint::InitFromEnv(), "test.failpoint_site=always");
  EXPECT_TRUE(failpoint::AnyEnabled());
  EXPECT_TRUE(failpoint::Triggered(kTestSite));
}

TEST_F(FailpointTest, InitFromEnvIgnoresMalformedSpecWithoutStrict) {
  ScopedEnv spec("F2DB_FAILPOINTS", "test.failpoint_site=bogus_policy");
  ScopedEnv strict("F2DB_FAILPOINTS_STRICT", "0");
  EXPECT_EQ(failpoint::InitFromEnv(), "");
  EXPECT_FALSE(failpoint::AnyEnabled());  // nothing silently armed either
}

TEST_F(FailpointTest, InitFromEnvAbortsOnMalformedSpecUnderStrict) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ::setenv("F2DB_FAILPOINTS", "test.failpoint_site=bogus_policy", 1);
        ::setenv("F2DB_FAILPOINTS_STRICT", "1", 1);
        failpoint::InitFromEnv();
      },
      "F2DB_FAILPOINTS malformed \\(strict mode, aborting\\)");
}

TEST_F(FailpointTest, InitFromEnvStrictAcceptsWellFormedSpec) {
  ScopedEnv spec("F2DB_FAILPOINTS", "test.failpoint_site=nth:2");
  ScopedEnv strict("F2DB_FAILPOINTS_STRICT", "1");
  EXPECT_EQ(failpoint::InitFromEnv(), "test.failpoint_site=nth:2");
  EXPECT_TRUE(failpoint::AnyEnabled());
}

}  // namespace
}  // namespace f2db
