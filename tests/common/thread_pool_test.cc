#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace f2db {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultConcurrencyPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPool, ExceptionsAreContainedByPackagedTask) {
  // Library code does not throw, but tasks from tests might; the future
  // carries the exception instead of tearing down the pool.
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace f2db
