#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace f2db {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultConcurrencyPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPool, ExceptionsAreContainedByPackagedTask) {
  // Library code does not throw, but tasks from tests might; the future
  // carries the exception instead of tearing down the pool.
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForSurvivesThrowingTasks) {
  // ParallelFor waits on the futures without rethrowing: a throwing
  // iteration neither kills a worker nor wedges the barrier, and the pool
  // stays usable afterwards.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.ParallelFor(16, [&completed](std::size_t i) {
    if (i % 4 == 0) throw std::runtime_error("iteration failure");
    ++completed;
  });
  EXPECT_EQ(completed.load(), 12);
  std::atomic<int> after{0};
  pool.ParallelFor(8, [&after](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, ConcurrentSubmittersAllComplete) {
  // The engine's maintenance layer shares one pool across callers; submits
  // racing from several threads must all run exactly once.
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.Submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) f.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPool, ParallelForFromMultipleThreads) {
  ThreadPool pool(2);
  constexpr int kCallers = 3;
  constexpr std::size_t kWidth = 64;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kWidth, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kWidth, [&hits, c](std::size_t i) { ++hits[c][i]; });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(std::accumulate(hits[c].begin(), hits[c].end(), 0),
              static_cast<int>(kWidth));
  }
}

TEST(ThreadPool, ShutdownWithThrowingTasksStillDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter, i] {
        if (i % 5 == 0) throw std::runtime_error("boom");
        ++counter;
      });
    }
  }  // destructor drains the queue and joins despite the exceptions
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace f2db
