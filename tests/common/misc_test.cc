#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace f2db {
namespace {

TEST(StopWatch, MeasuresElapsedTime) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedSeconds(), 0.015);
  EXPECT_GE(watch.ElapsedMillis(), 15.0);
}

TEST(StopWatch, RestartResets) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(Logging, LevelFilteringRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold records must not be evaluated at all: the side effect
  // in the stream expression is skipped.
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  F2DB_LOG(kDebug) << touch();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  // Emit to stderr (visible in failure logs only); must evaluate now.
  F2DB_LOG(kDebug) << "logging test record " << touch();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(before);
}

TEST(Logging, ConcurrentLoggingDoesNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < 500; ++j) {
        // Filtered records: the level check must be safe under concurrency.
        F2DB_LOG(kDebug) << "suppressed " << j;
      }
      F2DB_LOG(kError) << "one emitted record per thread";
    });
  }
  for (auto& t : threads) t.join();
  SetLogLevel(before);
}

}  // namespace
}  // namespace f2db
