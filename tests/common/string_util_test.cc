#include "common/string_util.h"

#include <gtest/gtest.h>

namespace f2db {
namespace {

TEST(SplitString, Basic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitString, KeepsEmptyFields) {
  const auto parts = SplitString("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitString, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimWhitespace, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(TrimWhitespace, KeepsInteriorSpace) {
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(ToLowerAscii, Basic) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToLowerAscii("abc123"), "abc123");
}

TEST(EqualsIgnoreCase, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(JoinStrings, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

}  // namespace
}  // namespace f2db
