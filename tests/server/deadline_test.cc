// Deadline propagation and per-tenant rate limiting over real loopback
// sockets, plus the wire v1/v2 byte pins that keep the extended request
// header backward-compatible.
//
// The deadline contract under test (DESIGN.md §12): a request whose budget
// is gone is answered kDeadlineExceeded as early as possible — at
// admission without consuming a worker, a queue slot, or a rate token; at
// worker dequeue without executing the statement. Both rejections are
// counter-verified against the ENGINE's statistics: expired work must
// never reach it.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr char kHost[] = "127.0.0.1";
constexpr char kSumQuery[] =
    "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3'";

class OverloadServerFixture : public ::testing::Test {
 protected:
  OverloadServerFixture()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions advisor_options;
    advisor_options.models_per_iteration = 4;
    advisor_options.stop.max_iterations = 12;
    AdvisorBuilder builder(advisor_options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  std::unique_ptr<F2dbEngine> MakeEngine() {
    auto engine =
        std::make_unique<F2dbEngine>(testing::MakeFigure2Cube(60, 0.05));
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  /// Polls until the server reports `want` in-flight requests (5s bound).
  static bool WaitForInFlight(const F2dbServer& server, std::size_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (server.stats().in_flight_requests == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

using DeadlineTest = OverloadServerFixture;
using RateLimitWireTest = OverloadServerFixture;

// ---------------------------------------------------------------------------
// Wire pins: the v2 extended header must not disturb v1 bytes.

TEST(DeadlineWireTest, V1RequestBytesArePinned) {
  // A v1 request — no deadline — must encode exactly as it did before the
  // extended header existed: u32-LE length, bare type byte, body.
  WireRequest request;
  request.type = FrameType::kQuery;
  request.body = "Q";
  const std::string frame = EncodeRequest(request);
  const std::string expected = {'\x02', '\x00', '\x00', '\x00', '\x01', 'Q'};
  EXPECT_EQ(frame, expected);

  // And a bare type byte decodes as "no deadline".
  auto decoded = DecodeRequestPayload(std::string("\x01", 1) + "Q");
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_deadline);
  EXPECT_EQ(decoded.value().deadline_ms, 0u);
  EXPECT_EQ(decoded.value().body, "Q");
}

TEST(DeadlineWireTest, V2DeadlineHeaderBytesArePinned) {
  WireRequest request;
  request.type = FrameType::kQuery;
  request.has_deadline = true;
  request.deadline_ms = 0x04030201u;
  request.body = "Q";
  const std::string frame = EncodeRequest(request);
  // length 6 = type + 4 deadline bytes + 1 body byte; type carries the
  // high-bit flag; the deadline is little-endian.
  const std::string expected = {'\x06', '\x00', '\x00', '\x00', '\x81',
                                '\x01', '\x02', '\x03', '\x04', 'Q'};
  EXPECT_EQ(frame, expected);

  auto decoded = DecodeRequestPayload(frame.substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, FrameType::kQuery);
  EXPECT_TRUE(decoded.value().has_deadline);
  EXPECT_EQ(decoded.value().deadline_ms, 0x04030201u);
  EXPECT_EQ(decoded.value().body, "Q");
}

TEST(DeadlineWireTest, ZeroDeadlineDecodesAsAlreadyExpired) {
  auto decoded =
      DecodeRequestPayload(std::string("\x81\x00\x00\x00\x00", 5));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has_deadline);
  EXPECT_EQ(decoded.value().deadline_ms, 0u);
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(DeadlineWireTest, TruncatedExtendedHeaderIsRejected) {
  // The flag announces 4 deadline bytes; fewer is a framing error, not a
  // silent partial decode.
  auto decoded = DecodeRequestPayload(std::string("\x81\x01\x02", 3));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Server-side deadline enforcement, counter-verified against the engine.

TEST_F(DeadlineTest, AlreadyExpiredRejectedAtAdmissionWithoutAWorker) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // deadline_ms = 0 means the budget was gone before the frame was sent.
  auto expired = client.value().CallWithDeadline(FrameType::kQuery,
                                                 kSumQuery, /*deadline_ms=*/0);
  ASSERT_TRUE(expired.ok()) << expired.status().message();
  EXPECT_EQ(expired.value().status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.value().body.find("before admission"), std::string::npos);

  // The rejection happened at admission: the engine never saw a query, and
  // no worker recorded a mid-queue expiry.
  EXPECT_EQ(engine->stats().queries, 0u);
  EXPECT_EQ(engine->stats().deadline_expired_queries, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_expired_admission, 1u);
  EXPECT_EQ(stats.deadline_expired_queue, 0u);
  EXPECT_EQ(stats.requests_received, 1u);

  // The connection survives; a live-budget query still works.
  auto healthy = client.value().CallWithDeadline(FrameType::kQuery, kSumQuery,
                                                 /*deadline_ms=*/60'000);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().status, StatusCode::kOk);
  EXPECT_EQ(engine->stats().queries, 1u);
  server.Shutdown();
}

TEST_F(DeadlineTest, MidQueueExpiryNeverReachesTheEngine) {
  auto engine = MakeEngine();
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());

  ServerOptions options;
  options.worker_threads = 1;
  options.worker_test_hook = [released] { released.wait(); };
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Request A (no deadline) occupies the only worker, blocked in the hook.
  Result<WireResponse> outcome_a = Status::Internal("unset");
  std::thread thread_a([&] {
    auto client = F2dbClient::Connect(kHost, server.port());
    ASSERT_TRUE(client.ok());
    outcome_a = client.value().Query(kSumQuery);
  });
  ASSERT_TRUE(WaitForInFlight(server, 1));

  // Request B carries a 100ms budget and queues behind A.
  Result<WireResponse> outcome_b = Status::Internal("unset");
  std::thread thread_b([&] {
    auto client = F2dbClient::Connect(kHost, server.port());
    ASSERT_TRUE(client.ok());
    outcome_b = client.value().CallWithDeadline(FrameType::kQuery, kSumQuery,
                                                /*deadline_ms=*/100);
  });
  ASSERT_TRUE(WaitForInFlight(server, 2));

  // Let B's budget expire while it sits in the queue, then release A.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  release.set_value();
  thread_a.join();
  thread_b.join();

  ASSERT_TRUE(outcome_a.ok()) << outcome_a.status().message();
  EXPECT_EQ(outcome_a.value().status, StatusCode::kOk);
  ASSERT_TRUE(outcome_b.ok()) << outcome_b.status().message();
  EXPECT_EQ(outcome_b.value().status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(outcome_b.value().body.find("while queued"), std::string::npos);

  // Only A executed: the worker answered B's expiry without touching the
  // engine.
  EXPECT_EQ(engine->stats().queries, 1u);
  EXPECT_EQ(engine->stats().deadline_expired_queries, 0u);
  EXPECT_EQ(server.stats().deadline_expired_queue, 1u);
  server.Shutdown();
}

TEST_F(DeadlineTest, TimeoutDerivedDeadlineRoundTrips) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());

  // A client with a per-call timeout stamps it as the wire deadline; a
  // healthy server answers well inside the budget.
  ClientOptions options;
  options.request_timeout_seconds = 30.0;
  auto client = F2dbClient::Connect(kHost, server.port(), options);
  ASSERT_TRUE(client.ok());
  auto result = client.value().Query(kSumQuery);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().status, StatusCode::kOk);
  EXPECT_EQ(result.value().degradation, DegradationLevel::kNone);

  // Opting out of propagation keeps the old v1 frames working.
  ClientOptions v1_options;
  v1_options.request_timeout_seconds = 30.0;
  v1_options.propagate_deadline = false;
  auto v1_client = F2dbClient::Connect(kHost, server.port(), v1_options);
  ASSERT_TRUE(v1_client.ok());
  auto v1_result = v1_client.value().Query(kSumQuery);
  ASSERT_TRUE(v1_result.ok());
  EXPECT_EQ(v1_result.value().status, StatusCode::kOk);
  EXPECT_EQ(server.stats().deadline_expired_admission, 0u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Per-tenant quotas over the wire.

TEST_F(RateLimitWireTest, TenantOverBurstIsThrottledWithRetryAfter) {
  auto engine = MakeEngine();
  ServerOptions options;
  // A near-zero refill rate makes the outcome deterministic: exactly the
  // burst conforms, everything after is throttled.
  options.tenant_rate_limit_per_second = 0.001;
  options.tenant_rate_burst = 2.0;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions alice_options;
  alice_options.tenant_id = "alice";
  auto alice = F2dbClient::Connect(kHost, server.port(), alice_options);
  ASSERT_TRUE(alice.ok()) << alice.status().message();

  for (int i = 0; i < 2; ++i) {
    auto ok = alice.value().Query(kSumQuery);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().status, StatusCode::kOk) << ok.value().body;
  }
  auto throttled = alice.value().Query(kSumQuery);
  ASSERT_TRUE(throttled.ok());
  EXPECT_EQ(throttled.value().status, StatusCode::kResourceExhausted);
  EXPECT_NE(throttled.value().body.find("alice"), std::string::npos);
  const auto hint = ParseRetryAfterMs(throttled.value().body);
  ASSERT_TRUE(hint.has_value()) << throttled.value().body;
  EXPECT_GE(*hint, 1u);
  EXPECT_GE(server.stats().requests_throttled, 1u);

  // Tenant isolation: bob's bucket is untouched by alice's flood.
  ClientOptions bob_options;
  bob_options.tenant_id = "bob";
  auto bob = F2dbClient::Connect(kHost, server.port(), bob_options);
  ASSERT_TRUE(bob.ok());
  auto bob_ok = bob.value().Query(kSumQuery);
  ASSERT_TRUE(bob_ok.ok());
  EXPECT_EQ(bob_ok.value().status, StatusCode::kOk);

  // Monitoring stays exempt: a throttled tenant can still PING and STATS.
  auto pong = alice.value().Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().body, "PONG");
  auto stats = alice.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().status, StatusCode::kOk);
  EXPECT_NE(stats.value().body.find("f2db_server_requests_throttled_total"),
            std::string::npos);
  server.Shutdown();
}

TEST_F(RateLimitWireTest, HelloEchoesTheBoundTenant) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto hello = client.value().Hello("analytics-team");
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello.value().status, StatusCode::kOk);
  EXPECT_EQ(hello.value().body, "HELLO tenant=analytics-team");

  // The empty tenant id is the shared default, spelled out explicitly.
  auto anonymous = client.value().Hello("");
  ASSERT_TRUE(anonymous.ok());
  EXPECT_EQ(anonymous.value().body, "HELLO tenant=(default)");

  // An oversized tenant id is a protocol error, not a silent truncation.
  auto oversized =
      client.value().Hello(std::string(kMaxTenantIdBytes + 1, 't'));
  ASSERT_TRUE(oversized.ok());
  EXPECT_EQ(oversized.value().status, StatusCode::kInvalidArgument);
  server.Shutdown();
}

TEST_F(RateLimitWireTest, CallWithReconnectSleepsOutTheRetryAfterHint) {
  auto engine = MakeEngine();
  ServerOptions options;
  options.tenant_rate_limit_per_second = 50.0;  // a token every 20ms
  options.tenant_rate_burst = 1.0;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.tenant_id = "carol";
  client_options.max_reconnect_attempts = 5;
  client_options.max_retry_after_seconds = 1.0;
  auto client = F2dbClient::Connect(kHost, server.port(), client_options);
  ASSERT_TRUE(client.ok());

  // Drain the burst, then let the retry loop absorb the throttle: it
  // sleeps the hinted ~20ms and lands a conforming retry.
  auto first = client.value().Query(kSumQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().status, StatusCode::kOk);
  auto retried =
      client.value().CallWithReconnect(FrameType::kQuery, kSumQuery);
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_EQ(retried.value().status, StatusCode::kOk) << retried.value().body;
  EXPECT_GE(server.stats().requests_throttled, 1u);
  // The throttle was handled on the live connection — no reconnects.
  EXPECT_EQ(client.value().reconnects_attempted(), 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace f2db
