// Wire-protocol codec tests: roundtrips, incremental reassembly, and the
// hostile-input rejections (oversized, zero-length, unknown bytes) the
// server relies on to stay allocation-bounded.

#include "server/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace f2db {
namespace {

TEST(WireCodecTest, RequestRoundTripsEveryType) {
  for (const FrameType type : {FrameType::kQuery, FrameType::kInsert,
                               FrameType::kStats, FrameType::kPing}) {
    WireRequest request;
    request.type = type;
    request.body = "SELECT time, sales FROM facts AS OF now() + '1'";
    const std::string encoded = EncodeRequest(request);
    ASSERT_GE(encoded.size(), 5u);
    auto decoded = DecodeRequestPayload(
        std::string_view(encoded).substr(4));  // strip length prefix
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded.value().type, type);
    EXPECT_EQ(decoded.value().body, request.body);
  }
}

TEST(WireCodecTest, ResponseRoundTripsAnnotations) {
  WireResponse response;
  response.type = FrameType::kQuery;
  response.status = StatusCode::kUnavailable;
  response.degradation = DegradationLevel::kNaiveFallback;
  response.body = "-- degraded\n42 | 1.5\n";
  const std::string encoded = EncodeResponse(response);
  auto decoded = DecodeResponsePayload(std::string_view(encoded).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, FrameType::kQuery);
  EXPECT_EQ(decoded.value().status, StatusCode::kUnavailable);
  EXPECT_EQ(decoded.value().degradation, DegradationLevel::kNaiveFallback);
  EXPECT_EQ(decoded.value().body, response.body);
}

TEST(WireCodecTest, EmptyBodiesAreValid) {
  const std::string encoded = EncodeRequest({FrameType::kPing, ""});
  auto decoded = DecodeRequestPayload(std::string_view(encoded).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(WireCodecTest, UnknownTypeBytesRejected) {
  EXPECT_FALSE(DecodeRequestPayload(std::string(1, '\0')).ok());
  EXPECT_FALSE(DecodeRequestPayload(std::string(1, '\x7f')).ok());
  EXPECT_FALSE(DecodeRequestPayload("").ok());
  // Response: bad type, then out-of-range status / degradation bytes.
  EXPECT_FALSE(DecodeResponsePayload(std::string("\x09\x00\x00", 3)).ok());
  EXPECT_FALSE(DecodeResponsePayload(std::string("\x01\x63\x00", 3)).ok());
  EXPECT_FALSE(DecodeResponsePayload(std::string("\x01\x00\x63", 3)).ok());
  EXPECT_FALSE(DecodeResponsePayload(std::string("\x01\x00", 2)).ok());
}

TEST(FrameDecoderTest, ReassemblesByteByByte) {
  const std::string encoded =
      EncodeRequest({FrameType::kQuery, "SELECT time, x FROM facts"});
  FrameDecoder decoder;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(&encoded[i], 1).ok());
    if (i + 1 < encoded.size()) {
      EXPECT_FALSE(decoder.Next().has_value());
    }
  }
  auto payload = decoder.Next();
  ASSERT_TRUE(payload.has_value());
  auto decoded = DecodeRequestPayload(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().body, "SELECT time, x FROM facts");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, SplitsCoalescedFrames) {
  std::string stream = EncodeRequest({FrameType::kPing, ""});
  stream += EncodeRequest({FrameType::kStats, ""});
  stream += EncodeRequest({FrameType::kQuery, "q"});
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(stream.data(), stream.size()).ok());
  int frames = 0;
  while (auto payload = decoder.Next()) {
    ++frames;
    EXPECT_TRUE(DecodeRequestPayload(*payload).ok());
  }
  EXPECT_EQ(frames, 3);
}

TEST(FrameDecoderTest, OversizedAnnouncementPoisonsImmediately) {
  // Announce a 2 MiB payload against the default 1 MiB cap: rejected from
  // the length prefix alone, before any payload is buffered.
  const std::uint32_t big = 2 * 1024 * 1024;
  char prefix[4] = {static_cast<char>(big & 0xff),
                    static_cast<char>((big >> 8) & 0xff),
                    static_cast<char>((big >> 16) & 0xff),
                    static_cast<char>((big >> 24) & 0xff)};
  FrameDecoder decoder;
  const Status status = decoder.Feed(prefix, 4);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Poisoned: every later call keeps failing, nothing is produced.
  EXPECT_FALSE(decoder.Feed("x", 1).ok());
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameDecoderTest, ZeroLengthAnnouncementRejected) {
  const char prefix[4] = {0, 0, 0, 0};
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(prefix, 4).ok());
}

TEST(FrameDecoderTest, CustomCapApplies) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  const std::string small = EncodeRequest({FrameType::kQuery, "1234567"});
  ASSERT_EQ(small.size(), 4u + 8u);
  ASSERT_TRUE(decoder.Feed(small.data(), small.size()).ok());
  EXPECT_TRUE(decoder.Next().has_value());
  const std::string large = EncodeRequest({FrameType::kQuery, "12345678"});
  EXPECT_FALSE(decoder.Feed(large.data(), large.size()).ok());
}

TEST(FrameDecoderTest, BadSecondFrameDetectedAfterGoodFirst) {
  std::string stream = EncodeRequest({FrameType::kPing, ""});
  const char zero_prefix[4] = {0, 0, 0, 0};
  stream.append(zero_prefix, 4);
  FrameDecoder decoder;
  // The bad prefix is hidden behind the first frame at feed time; it is
  // detected as soon as the first frame is popped.
  (void)decoder.Feed(stream.data(), stream.size());
  auto first = decoder.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_FALSE(decoder.Feed("x", 1).ok());
}

TEST(WireCodecTest, FrameTypeNamesAreStable) {
  EXPECT_STREQ(FrameTypeName(FrameType::kQuery), "QUERY");
  EXPECT_STREQ(FrameTypeName(FrameType::kInsert), "INSERT");
  EXPECT_STREQ(FrameTypeName(FrameType::kStats), "STATS");
  EXPECT_STREQ(FrameTypeName(FrameType::kPing), "PING");
}

}  // namespace
}  // namespace f2db
