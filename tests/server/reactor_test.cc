// Multi-reactor serving tests: a reactor pool serving real loopback
// connections, the SO_REUSEPORT per-reactor listener path, and the
// single-listener round-robin hand-off fallback (use_so_reuseport = false
// or a kernel without the option).

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr char kHost[] = "127.0.0.1";

ServerOptions MakeOptions(std::size_t reactors, bool reuseport) {
  ServerOptions options;
  options.reactor_threads = reactors;
  options.use_so_reuseport = reuseport;
  options.worker_threads = 2;
  return options;
}

/// Connects `count` clients and round-trips a PING on each; exercises
/// every reactor regardless of which one the kernel (or the hand-off
/// cursor) assigned the connection to.
void PingAcrossConnections(std::uint16_t port, std::size_t count) {
  std::vector<F2dbClient> clients;
  for (std::size_t i = 0; i < count; ++i) {
    auto connected = F2dbClient::Connect(kHost, port);
    ASSERT_TRUE(connected.ok()) << "conn " << i << ": "
                                << connected.status().ToString();
    clients.push_back(std::move(connected.value()));
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto response = clients[i].Ping();
    ASSERT_TRUE(response.ok()) << "conn " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response.value().status, StatusCode::kOk);
  }
  for (F2dbClient& client : clients) client.Close();
}

TEST(ReactorTest, MultiReactorServesManyConnections) {
  F2dbEngine engine(testing::MakeFigure2Cube(48, 0.05));
  F2dbServer server(engine, MakeOptions(4, /*reuseport=*/true));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  PingAcrossConnections(server.port(), 12);
  server.Shutdown();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.stats().connections_accepted, 12u);
  EXPECT_EQ(server.stats().connections_accepted,
            server.stats().connections_closed);
}

TEST(ReactorTest, ReuseportDisabledFallsBackToAcceptHandoff) {
  // Satellite: with SO_REUSEPORT off the listener degrades gracefully to
  // the single accept-thread hand-off path — reactor 0 owns the only
  // listener and distributes accepted sockets round-robin.
  F2dbEngine engine(testing::MakeFigure2Cube(48, 0.05));
  F2dbServer server(engine, MakeOptions(3, /*reuseport=*/false));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.accept_handoff_active());
  PingAcrossConnections(server.port(), 9);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.connections_accepted, 9u);
  server.Shutdown();
  EXPECT_EQ(server.stats().connections_closed,
            server.stats().connections_accepted);
}

TEST(ReactorTest, ReuseportPathActiveWhenKernelSupportsIt) {
#ifdef SO_REUSEPORT
  F2dbEngine engine(testing::MakeFigure2Cube(48, 0.05));
  F2dbServer server(engine, MakeOptions(2, /*reuseport=*/true));
  ASSERT_TRUE(server.Start().ok());
  // Either the kernel honored per-reactor listeners, or Start() fell back
  // cleanly; both must serve.
  PingAcrossConnections(server.port(), 4);
  server.Shutdown();
#else
  GTEST_SKIP() << "SO_REUSEPORT not defined on this platform";
#endif
}

TEST(ReactorTest, SingleReactorAlwaysUsesHandoffPath) {
  // One reactor has nothing to hand off to; the flag documents that the
  // single-listener path is in effect.
  F2dbEngine engine(testing::MakeFigure2Cube(48, 0.05));
  F2dbServer server(engine, MakeOptions(1, /*reuseport=*/true));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.accept_handoff_active());
  PingAcrossConnections(server.port(), 3);
  server.Shutdown();
}

TEST(ReactorTest, QueriesAndInsertsServeOnEveryReactor) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  ModelSpec spec;
  spec.type = ModelType::kSes;
  auto config = BuildShardableConfiguration(graph, spec, 1.0);
  ASSERT_TRUE(config.ok());
  auto sharded = [&] {
    ShardedEngineOptions options;
    options.num_shards = 2;
    options.engine.maintenance_threads = 1;
    return ShardedEngine::Open(graph, options);
  }();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE(sharded.value()->LoadConfiguration(config.value(), 1.0).ok());

  F2dbServer server(*sharded.value(), MakeOptions(3, /*reuseport=*/false));
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '2'";
  std::vector<F2dbClient> clients;
  for (std::size_t i = 0; i < 6; ++i) {
    auto connected = F2dbClient::Connect(kHost, server.port());
    ASSERT_TRUE(connected.ok());
    clients.push_back(std::move(connected.value()));
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto response = clients[i].Query(sql);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, StatusCode::kOk)
        << response.value().body;
  }
  // An insert through one connection lands on the owning shard.
  auto inserted = clients[0].Insert(
      "INSERT INTO facts VALUES ('C1', 'P1', 48, 5.0)");
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(inserted.value().status, StatusCode::kOk)
      << inserted.value().body;
  EXPECT_EQ(sharded.value()->pending_inserts(), 1u);

  // STATS over the wire carries the per-shard engine families.
  auto stats = clients[1].Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("f2db_queries_total{shard=\""),
            std::string::npos);
  EXPECT_NE(stats.value().body.find("f2db_server_requests_total"),
            std::string::npos);

  for (F2dbClient& client : clients) client.Close();
  server.Shutdown();
}

TEST(ReactorTest, RequestShutdownDrainsEveryReactor) {
  F2dbEngine engine(testing::MakeFigure2Cube(48, 0.05));
  F2dbServer server(engine, MakeOptions(4, /*reuseport=*/false));
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  auto connected = F2dbClient::Connect(kHost, port);
  ASSERT_TRUE(connected.ok());
  auto response = connected.value().Ping();
  ASSERT_TRUE(response.ok());

  server.RequestShutdown();
  server.Shutdown();
  EXPECT_FALSE(server.running());
  // The drained listeners refuse new work.
  auto late = F2dbClient::Connect(kHost, port);
  EXPECT_FALSE(late.ok());
}

}  // namespace
}  // namespace f2db
