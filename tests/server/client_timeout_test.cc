// Client hardening tests: per-request timeouts against a half-open peer
// and the bounded jittered-backoff reconnect loop.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

/// A TCP listener that accepts the kernel handshake but never reads or
/// writes: the classic half-open peer. (With a small backlog the connect
/// itself still completes, so the client blocks inside the request.)
class SilentPeer {
 public:
  SilentPeer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    const int enable = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }

  ~SilentPeer() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(ClientTimeout, RequestAgainstSilentPeerTimesOutAndCloses) {
  SilentPeer peer;
  ClientOptions options;
  options.request_timeout_seconds = 0.2;
  auto client = F2dbClient::Connect("127.0.0.1", peer.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  auto response = client.value().Ping();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("timed out"), std::string::npos)
      << response.status().ToString();
  // Bounded: well under a blocking-forever hang, at least the timeout.
  EXPECT_GE(elapsed, 0.15);
  EXPECT_LT(elapsed, 5.0);
  // The stream is poisoned mid-frame; the client must have closed it.
  EXPECT_FALSE(client.value().connected());
}

TEST(ClientTimeout, ZeroTimeoutKeepsTheLegacyBlockingDefault) {
  ClientOptions options;
  EXPECT_EQ(options.request_timeout_seconds, 0.0);
  EXPECT_EQ(options.max_reconnect_attempts, 0u);
}

TEST(ClientTimeout, ReconnectAttemptsAreBounded) {
  auto peer = std::make_unique<SilentPeer>();
  ClientOptions options;
  options.request_timeout_seconds = 0.1;
  options.max_reconnect_attempts = 3;
  options.reconnect_backoff_seconds = 0.01;
  auto client = F2dbClient::Connect("127.0.0.1", peer->port(), options);
  ASSERT_TRUE(client.ok());
  const std::uint16_t port = peer->port();
  peer->Close();  // nobody listens on the port anymore

  auto response = client.value().CallWithReconnect(FrameType::kPing, "");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.value().reconnects_attempted(), 3u);
  EXPECT_EQ(client.value().reconnects_succeeded(), 0u);
  (void)port;
}

TEST(ClientTimeout, CallWithReconnectRecoversAfterServerRestart) {
  F2dbEngine engine(testing::MakeRegionCube(40, 0.0));
  ServerOptions server_options;
  server_options.worker_threads = 2;

  auto first = std::make_unique<F2dbServer>(engine, server_options);
  ASSERT_TRUE(first->Start().ok());
  const std::uint16_t port = first->port();

  ClientOptions options;
  options.request_timeout_seconds = 1.0;
  options.max_reconnect_attempts = 5;
  options.reconnect_backoff_seconds = 0.05;
  auto client = F2dbClient::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().Ping().ok());

  // Kill the server and restart it on the same port: the client's next
  // request fails over the dead connection, reconnects, and succeeds.
  first->Shutdown();
  first.reset();
  server_options.port = port;
  F2dbServer second(engine, server_options);
  ASSERT_TRUE(second.Start().ok());

  auto response = client.value().CallWithReconnect(FrameType::kPing, "");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().body, "PONG");
  EXPECT_GE(client.value().reconnects_attempted(), 1u);
  EXPECT_GE(client.value().reconnects_succeeded(), 1u);
  second.Shutdown();
}

}  // namespace
}  // namespace f2db
