// Slow-client backpressure: the outbound hard byte ceiling on
// ServerConnection (socketpair unit tests) and the reactor's
// pause/evict ladder against a peer that never reads (loopback), plus the
// golden-text pin of the server's Prometheus exposition.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/connection.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr char kHost[] = "127.0.0.1";
constexpr char kSumQuery[] =
    "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3'";

// ---------------------------------------------------------------------------
// ServerConnection hard-cap unit tests over a socketpair.

class BackpressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv_), 0);
  }
  void TearDown() override {
    // sv_[0] belongs to the ServerConnection under test (its destructor
    // closes it); the peer end is ours.
    if (sv_[1] >= 0) ::close(sv_[1]);
  }

  int sv_[2] = {-1, -1};
};

TEST_F(BackpressureTest, HardCapRefusesTheOverflowingFrame) {
  ServerConnection conn(sv_[0], kMaxFrameBytes, /*outbound_cap_bytes=*/64);
  const std::string frame(16, 'x');
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(conn.EnqueueResponse(frame)) << "frame " << i;
  }
  EXPECT_EQ(conn.pending_out_bytes(), 64u);
  EXPECT_FALSE(conn.over_outbound_cap());

  // The fifth frame would cross the ceiling: refused, NOT queued, and the
  // connection is marked for eviction.
  EXPECT_FALSE(conn.EnqueueResponse(frame));
  EXPECT_TRUE(conn.over_outbound_cap());
  EXPECT_EQ(conn.pending_out_bytes(), 64u);

  // Exactly the four accepted frames reach the peer.
  EXPECT_TRUE(conn.FlushWrites());
  EXPECT_EQ(conn.pending_out_bytes(), 0u);
  char buffer[256];
  const ssize_t n = ::read(sv_[1], buffer, sizeof(buffer));
  EXPECT_EQ(n, 64);
}

TEST_F(BackpressureTest, PendingBytesTrackEnqueueAndDrain) {
  ServerConnection conn(sv_[0], kMaxFrameBytes, /*outbound_cap_bytes=*/1024);
  EXPECT_EQ(conn.pending_out_bytes(), 0u);
  EXPECT_TRUE(conn.EnqueueResponse(std::string(100, 'a')));
  EXPECT_TRUE(conn.EnqueueResponse(std::string(50, 'b')));
  EXPECT_EQ(conn.pending_out_bytes(), 150u);
  EXPECT_TRUE(conn.wants_write());

  EXPECT_TRUE(conn.FlushWrites());
  EXPECT_EQ(conn.pending_out_bytes(), 0u);
  EXPECT_FALSE(conn.wants_write());

  // The ceiling measures live bytes, not lifetime bytes: after a drain the
  // full budget is available again.
  EXPECT_TRUE(conn.EnqueueResponse(std::string(1024, 'c')));
  EXPECT_FALSE(conn.over_outbound_cap());
}

TEST_F(BackpressureTest, ZeroCapMeansUnbounded) {
  ServerConnection conn(sv_[0], kMaxFrameBytes, /*outbound_cap_bytes=*/0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(conn.EnqueueResponse(std::string(4096, 'x')));
  }
  EXPECT_FALSE(conn.over_outbound_cap());
  EXPECT_EQ(conn.pending_out_bytes(), 64u * 4096u);
}

// ---------------------------------------------------------------------------
// Loopback: a peer that floods requests and never reads responses is
// paused at the high watermark and evicted, while other clients keep
// being served.

class BackpressureIntegrationTest : public ::testing::Test {
 protected:
  BackpressureIntegrationTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions advisor_options;
    advisor_options.models_per_iteration = 4;
    advisor_options.stop.max_iterations = 12;
    AdvisorBuilder builder(advisor_options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  std::unique_ptr<F2dbEngine> MakeEngine() {
    auto engine =
        std::make_unique<F2dbEngine>(testing::MakeFigure2Cube(60, 0.05));
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  /// A raw blocking connection with a deliberately tiny receive buffer, so
  /// the TCP window closes almost immediately once we stop reading.
  static int ConnectNonReading(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int rcvbuf = 512;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

TEST_F(BackpressureIntegrationTest, NeverReadingPeerIsPausedThenEvicted) {
  auto engine = MakeEngine();
  ServerOptions options;
  options.outbound_high_watermark_bytes = 16 * 1024;
  // Unbounded cap: a 400-response burst would cross any reasonable cap
  // before the reactor's first flush ever runs UpdateInterest, evicting
  // without a pause. Disabling it isolates the pause -> grace-evict rungs;
  // cap eviction is covered by the socketpair tests above and the chaos
  // suite.
  options.outbound_hard_cap_bytes = 0;
  options.slow_client_grace_seconds = 0.5;
  // Nothing should be shed here — the flood must be answered so the
  // responses pile up against the non-reading peer.
  options.admission_queue_limit = 1024;
  options.brownout_watermark = 0;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Flood STATS requests (each response is kilobytes of Prometheus text)
  // and never read a byte back. The requests themselves are tiny, so the
  // blocking sends cannot stall even after the server pauses reading.
  const int flood_fd = ConnectNonReading(server.port());
  ASSERT_GE(flood_fd, 0);
  WireRequest stats;
  stats.type = FrameType::kStats;
  const std::string frame = EncodeRequest(stats);
  for (int i = 0; i < 400; ++i) {
    ASSERT_EQ(::send(flood_fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
  }

  // The server pauses reading once the undrained responses cross the
  // watermark, and the grace timer then evicts the still-paused peer.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         server.stats().read_pauses == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().read_pauses, 1u);
  while (std::chrono::steady_clock::now() < deadline &&
         server.stats().connections_evicted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServerStats stats_after = server.stats();
  EXPECT_GE(stats_after.connections_evicted, 1u);
  EXPECT_GE(stats_after.read_pauses, 1u);

  // The victim's socket is gone server-side; a well-behaved client on the
  // same server is entirely unaffected.
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok()) << client.status().message();
  auto result = client.value().Query(kSumQuery);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().status, StatusCode::kOk);

  ::close(flood_fd);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Golden pin of the server-side Prometheus exposition. Every overload
// counter must render, with the per-cause labels, exactly as scrapers
// already consume it — a byte change here is a dashboard break.

TEST(OverloadStatsTest, PrometheusTextIsPinned) {
  ServerStats stats;
  stats.connections_accepted = 1;
  stats.connections_closed = 2;
  stats.connections_refused = 3;
  stats.connections_evicted = 4;
  stats.read_pauses = 5;
  stats.requests_received = 6;
  stats.responses_sent = 7;
  stats.requests_shed_admission = 8;
  stats.requests_shed_shutdown = 9;
  stats.requests_shed = 17;
  stats.requests_throttled = 10;
  stats.deadline_expired_admission = 11;
  stats.deadline_expired_queue = 12;
  stats.protocol_errors = 13;
  stats.brownout_episodes = 14;
  stats.brownout_queries = 15;
  stats.brownout_active = 1;
  stats.in_flight_requests = 16;

  const std::string expected =
      "# HELP f2db_server_connections_accepted_total Client connections "
      "accepted.\n"
      "# TYPE f2db_server_connections_accepted_total counter\n"
      "f2db_server_connections_accepted_total 1\n"
      "# HELP f2db_server_connections_closed_total Client connections closed "
      "(peer or server side).\n"
      "# TYPE f2db_server_connections_closed_total counter\n"
      "f2db_server_connections_closed_total 2\n"
      "# HELP f2db_server_connections_refused_total Connections refused at "
      "the max_connections cap.\n"
      "# TYPE f2db_server_connections_refused_total counter\n"
      "f2db_server_connections_refused_total 3\n"
      "# HELP f2db_server_connections_evicted_total Connections dropped by "
      "backpressure (outbound hard cap or the slow-client grace timer).\n"
      "# TYPE f2db_server_connections_evicted_total counter\n"
      "f2db_server_connections_evicted_total 4\n"
      "# HELP f2db_server_read_pauses_total Times a connection crossed the "
      "outbound high watermark and had its reading paused.\n"
      "# TYPE f2db_server_read_pauses_total counter\n"
      "f2db_server_read_pauses_total 5\n"
      "# HELP f2db_server_requests_total Request frames received.\n"
      "# TYPE f2db_server_requests_total counter\n"
      "f2db_server_requests_total 6\n"
      "# HELP f2db_server_responses_total Response frames queued for "
      "transmission.\n"
      "# TYPE f2db_server_responses_total counter\n"
      "f2db_server_responses_total 7\n"
      "# HELP f2db_server_requests_shed_total Requests answered kUnavailable "
      "by admission control, by cause.\n"
      "# TYPE f2db_server_requests_shed_total counter\n"
      "f2db_server_requests_shed_total{cause=\"admission\"} 8\n"
      "f2db_server_requests_shed_total{cause=\"shutdown\"} 9\n"
      "f2db_server_requests_shed_total 17\n"
      "# HELP f2db_server_requests_throttled_total Requests refused with "
      "kResourceExhausted by a tenant's token bucket.\n"
      "# TYPE f2db_server_requests_throttled_total counter\n"
      "f2db_server_requests_throttled_total 10\n"
      "# HELP f2db_server_deadline_expired_total Requests rejected with "
      "kDeadlineExceeded before execution, by pipeline stage.\n"
      "# TYPE f2db_server_deadline_expired_total counter\n"
      "f2db_server_deadline_expired_total{stage=\"admission\"} 11\n"
      "f2db_server_deadline_expired_total{stage=\"queue\"} 12\n"
      "f2db_server_deadline_expired_total 23\n"
      "# HELP f2db_server_protocol_errors_total Malformed or oversized "
      "frames received.\n"
      "# TYPE f2db_server_protocol_errors_total counter\n"
      "f2db_server_protocol_errors_total 13\n"
      "# HELP f2db_server_brownout_episodes_total Brownout-mode transitions "
      "(inactive to active).\n"
      "# TYPE f2db_server_brownout_episodes_total counter\n"
      "f2db_server_brownout_episodes_total 14\n"
      "# HELP f2db_server_brownout_queries_total Queries executed in "
      "brownout mode.\n"
      "# TYPE f2db_server_brownout_queries_total counter\n"
      "f2db_server_brownout_queries_total 15\n"
      "# HELP f2db_server_brownout_active 1 while the server is currently in "
      "brownout.\n"
      "# TYPE f2db_server_brownout_active gauge\n"
      "f2db_server_brownout_active 1\n"
      "# HELP f2db_server_inflight_requests Requests queued or executing "
      "right now.\n"
      "# TYPE f2db_server_inflight_requests gauge\n"
      "f2db_server_inflight_requests 16\n";
  EXPECT_EQ(stats.ToPrometheusText(), expected);
}

}  // namespace
}  // namespace f2db
