// Robustness: failure injection, random-schema property sweeps, and parser
// fuzzing. The advisor and baselines must degrade gracefully when model
// creation fails for some nodes, the graph must uphold its invariants for
// arbitrary hierarchy shapes, and the query parser must reject garbage
// without crashing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/bottom_up.h"
#include "baselines/direct.h"
#include "common/rng.h"
#include "core/advisor.h"
#include "engine/query.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

// --------------------------------------------------------- fault injection

TEST(FailureInjection, FactoryHookAbortsCreation) {
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(4));
  factory.set_fit_hook([](const TimeSeries&) {
    return Status::Internal("injected failure");
  });
  const TimeSeries series(std::vector<double>(40, 5.0));
  EXPECT_FALSE(factory.CreateAndFit(series).ok());
}

TEST(FailureInjection, AdvisorSurvivesPartialFitFailures) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60, 0.1);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  // Every series whose first value is below the median scale fails.
  factory.set_fit_hook([](const TimeSeries& series) {
    if (series[0] < 15.0) return Status::Internal("injected failure");
    return Status::OK();
  });
  AdvisorOptions options;
  options.models_per_iteration = 4;
  options.stop.max_iterations = 10;
  ModelConfigurationAdvisor advisor(graph, factory, options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  // Some models exist and the error improved below uncovered-everywhere.
  EXPECT_GE(result.value().configuration.num_models(), 1u);
  EXPECT_LT(result.value().final_error, 1.0);
}

TEST(FailureInjection, AdvisorSurvivesTotalFitFailure) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(4));
  factory.set_fit_hook(
      [](const TimeSeries&) { return Status::Internal("always fails"); });
  AdvisorOptions options;
  options.models_per_iteration = 2;
  options.stop.max_iterations = 4;
  ModelConfigurationAdvisor advisor(graph, factory, options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());  // graceful: empty configuration, max error
  EXPECT_EQ(result.value().configuration.num_models(), 0u);
  EXPECT_DOUBLE_EQ(result.value().final_error, 1.0);
}

TEST(FailureInjection, BaselinesSkipFailedNodes) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60, 0.1);
  ConfigurationEvaluator evaluator(graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  std::size_t calls = 0;
  factory.set_fit_hook([&calls](const TimeSeries&) {
    // Fail every third creation.
    return (++calls % 3 == 0) ? Status::Internal("injected") : Status::OK();
  });
  DirectBuilder direct;
  auto outcome = direct.Build(evaluator, factory);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome.value().configuration.num_models(), graph.num_nodes());
  EXPECT_GT(outcome.value().configuration.num_models(), 0u);
}

// ----------------------------------------------------- random-schema sweep

struct SchemaShape {
  std::size_t dims;
  std::size_t values_per_dim;
  std::size_t levels;  // declared levels in the first dimension
};

class RandomSchemaSweep : public ::testing::TestWithParam<SchemaShape> {};

TimeSeriesGraph BuildRandomGraph(const SchemaShape& shape,
                                 std::uint64_t seed) {
  Rng rng(seed);
  CubeSchema schema;
  for (std::size_t d = 0; d < shape.dims; ++d) {
    if (d == 0 && shape.levels > 1) {
      Hierarchy h("dim0");
      std::size_t size = shape.values_per_dim;
      std::vector<std::size_t> level_sizes;
      for (std::size_t l = 0; l < shape.levels; ++l) {
        level_sizes.push_back(std::max<std::size_t>(1, size));
        size = (size + 1) / 2;
      }
      for (std::size_t l = 0; l < shape.levels; ++l) {
        std::vector<std::string> names;
        for (std::size_t v = 0; v < level_sizes[l]; ++v) {
          names.push_back("d0l" + std::to_string(l) + "v" + std::to_string(v));
        }
        EXPECT_TRUE(h.AddLevel("level" + std::to_string(l), names).ok());
      }
      for (std::size_t l = 0; l + 1 < shape.levels; ++l) {
        for (std::size_t v = 0; v < level_sizes[l]; ++v) {
          // Random parent, but ensure every parent has at least one child
          // by pinning the first children deterministically.
          const std::size_t parent =
              v < level_sizes[l + 1]
                  ? v
                  : static_cast<std::size_t>(rng.UniformInt(
                        0, static_cast<std::int64_t>(level_sizes[l + 1]) - 1));
          EXPECT_TRUE(h.SetParent(static_cast<LevelIndex>(l),
                                  static_cast<ValueIndex>(v),
                                  static_cast<ValueIndex>(parent))
                          .ok());
        }
      }
      EXPECT_TRUE(h.Finalize().ok());
      EXPECT_TRUE(schema.AddHierarchy(std::move(h)).ok());
    } else {
      std::vector<std::string> names;
      for (std::size_t v = 0; v < shape.values_per_dim; ++v) {
        names.push_back("d" + std::to_string(d) + "v" + std::to_string(v));
      }
      EXPECT_TRUE(
          schema
              .AddHierarchy(Hierarchy::Flat("dim" + std::to_string(d), names))
              .ok());
    }
  }
  auto graph = TimeSeriesGraph::Create(std::move(schema));
  EXPECT_TRUE(graph.ok());
  for (NodeId base : graph.value().base_nodes()) {
    std::vector<double> values(24);
    for (double& v : values) v = rng.Uniform(1.0, 100.0);
    EXPECT_TRUE(graph.value().SetBaseSeries(base, TimeSeries(values)).ok());
  }
  EXPECT_TRUE(graph.value().BuildAggregates().ok());
  return std::move(graph).value();
}

TEST_P(RandomSchemaSweep, GraphInvariantsHold) {
  const TimeSeriesGraph graph = BuildRandomGraph(GetParam(), 33);

  // Address round trip for every node.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    EXPECT_EQ(graph.NodeFor(graph.AddressOf(node)).value(), node);
  }
  // Aggregation exactness along every dimension.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    for (const auto& [dim, children] : graph.ChildSets(node)) {
      for (std::size_t t = 0; t < graph.series_length(); ++t) {
        double sum = 0.0;
        for (NodeId child : children) sum += graph.series(child)[t];
        ASSERT_NEAR(graph.series(node)[t], sum, 1e-6);
      }
    }
  }
  // Distance symmetry and identity on a sample of pairs.
  Rng rng(44);
  for (int i = 0; i < 50; ++i) {
    const NodeId a = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<std::int64_t>(graph.num_nodes()) - 1));
    const NodeId b = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<std::int64_t>(graph.num_nodes()) - 1));
    EXPECT_EQ(graph.Distance(a, b), graph.Distance(b, a));
    EXPECT_EQ(graph.Distance(a, a), 0u);
  }
  // Base nodes count = product of level-0 cardinalities.
  EXPECT_EQ(graph.num_base_nodes(), graph.schema().NumBaseCells());
}

TEST_P(RandomSchemaSweep, AdvisorProducesValidConfiguration) {
  const TimeSeriesGraph graph = BuildRandomGraph(GetParam(), 55);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  AdvisorOptions options;
  options.models_per_iteration = 2;
  options.stop.max_iterations = 6;
  ModelConfigurationAdvisor advisor(graph, factory, options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().final_error, 1.0);
  // Every assigned scheme's sources carry models.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const auto& scheme = result.value().configuration.assignment(node).scheme;
    for (NodeId source : scheme.sources) {
      EXPECT_TRUE(result.value().configuration.HasModel(source));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomSchemaSweep,
    ::testing::Values(SchemaShape{1, 6, 1}, SchemaShape{1, 9, 3},
                      SchemaShape{2, 4, 2}, SchemaShape{3, 3, 1},
                      SchemaShape{2, 5, 3}),
    [](const auto& info) {
      return "dims" + std::to_string(info.param.dims) + "vals" +
             std::to_string(info.param.values_per_dim) + "levels" +
             std::to_string(info.param.levels);
    });

// -------------------------------------------------------------- parser fuzz

TEST(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(66);
  const std::string alphabet =
      "SELECTINSERTEXPLAIN WHERE()'+,;=*abcxyz0123456789_\t\n\"%";
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t length =
        static_cast<std::size_t>(rng.UniformInt(0, 80));
    std::string input;
    for (std::size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
    }
    auto result = ParseStatement(input);  // must not crash or hang
    (void)result;
  }
}

TEST(ParserFuzz, TokenShuffleNeverCrashes) {
  // Recombine valid tokens in random orders.
  const std::vector<std::string> tokens{
      "SELECT", "time",  ",",      "SUM",  "(",      "sales", ")",
      "FROM",   "facts", "WHERE",  "city", "=",      "'C1'",  "AND",
      "GROUP",  "BY",    "AS",     "OF",   "now",    "+",     "'3'",
      "INSERT", "INTO",  "VALUES", "12.5", "EXPLAIN", "WITH", "INTERVALS"};
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const std::size_t count =
        static_cast<std::size_t>(rng.UniformInt(1, 14));
    for (std::size_t i = 0; i < count; ++i) {
      input += tokens[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(tokens.size()) - 1))];
      input.push_back(' ');
    }
    auto result = ParseStatement(input);
    (void)result;
  }
}

TEST(ParserFuzz, ValidQueriesStillParseAfterFuzzing) {
  EXPECT_TRUE(ParseStatement("SELECT time, x FROM f AS OF now() + '1'").ok());
}

}  // namespace
}  // namespace f2db
