// Recovery integration tests: a durable engine is closed (or has its WAL
// mutilated) and reopened, and the recovered state must match what a
// never-restarted engine computes — snapshots, counters, forecasts.

#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/advisor_builder.h"
#include "common/failpoint.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/wal.h"
#include "server/server.h"
#include "testing/crash.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : evaluator_graph_(testing::MakeRegionCube(48, 0.0)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(4)) {
    AdvisorOptions options;
    options.stop.max_iterations = 8;
    options.seed = 123;
    AdvisorBuilder builder(options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  void SetUp() override {
    failpoint::DisableAll();
    char tmpl[] = "/tmp/f2db_recovery_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    failpoint::DisableAll();
    f2db::testing::RemoveDirectoryTree(dir_);
  }

  EngineOptions DurableOptions() const {
    EngineOptions options;
    options.maintenance_threads = 1;
    options.data_dir = dir_;
    options.fsync_policy = FsyncPolicy::kAlways;
    return options;
  }

  /// Opens a durable engine over a fresh copy of the region cube.
  std::unique_ptr<F2dbEngine> Open(EngineOptions options) {
    auto engine =
        F2dbEngine::Open(testing::MakeRegionCube(48, 0.0), options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
  }

  void LoadConfig(F2dbEngine& engine) {
    const Status loaded = engine.LoadConfiguration(config_, evaluator_);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  }

  /// Inserts `periods` full periods of deterministic facts.
  static void Advance(F2dbEngine& engine, int periods) {
    const std::vector<NodeId> bases = engine.graph().base_nodes();
    for (int period = 0; period < periods; ++period) {
      const std::int64_t t =
          engine.snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        const Status status =
            engine.InsertFact(bases[i], t, 10.0 + static_cast<double>(i));
        ASSERT_TRUE(status.ok()) << status.message();
      }
    }
  }

  static std::vector<double> TopForecast(const F2dbEngine& engine) {
    auto forecast = engine.ForecastNode(engine.graph().top_node(), 3);
    EXPECT_TRUE(forecast.ok()) << forecast.status().ToString();
    return forecast.ok() ? forecast.value() : std::vector<double>{};
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
  std::string dir_;
};

TEST_F(RecoveryTest, FreshDirectoryOpensEmptyAndDurable) {
  auto engine = Open(DurableOptions());
  EXPECT_TRUE(engine->durable());
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.wal_records_replayed, 0u);
  EXPECT_EQ(stats.torn_tail_detected, 0u);
  EXPECT_GE(stats.recovery_duration_ms, 0.0);
  auto epochs = ListWalEpochs(dir_);
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{1}));
}

TEST_F(RecoveryTest, PlainEngineIsNotDurable) {
  F2dbEngine engine(testing::MakeRegionCube(48, 0.0));
  EXPECT_FALSE(engine.durable());
  EXPECT_EQ(engine.CheckpointNow().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, ConfigurationAndInsertsSurviveReopen) {
  std::vector<double> before;
  std::size_t pending = 0;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    // One buffered fact that has not completed a period yet.
    const std::vector<NodeId> bases = engine->graph().base_nodes();
    const std::int64_t t =
        engine->snapshot()->graph->series(bases[0]).end_time();
    ASSERT_TRUE(engine->InsertFact(bases[0], t, 42.0).ok());
    before = TopForecast(*engine);
    pending = engine->pending_inserts();
    ASSERT_EQ(pending, 1u);
  }  // clean close: destructor syncs and closes the WAL

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  // 1 catalog record + 2 periods * 3 cells + 1 partial insert.
  EXPECT_EQ(stats.wal_records_replayed, 8u);
  EXPECT_EQ(stats.torn_tail_detected, 0u);
  EXPECT_EQ(stats.inserts, 7u);
  EXPECT_EQ(stats.time_advances, 2u);
  EXPECT_EQ(engine->pending_inserts(), pending);

  // Replay is deterministic: model round-trips are exact (%.17g) and the
  // aggregate rebuild shares the live summation order, so the recovered
  // forecast is bit-identical.
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(RecoveryTest, CheckpointTruncatesWalAndRecovers) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 1);
    const Status checkpointed = engine->CheckpointNow();
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.ToString();
    EXPECT_EQ(engine->stats().checkpoints_completed, 1u);
    EXPECT_GE(engine->stats().last_checkpoint_age_seconds, 0.0);

    // The pre-checkpoint segment is gone; appends go to epoch 2.
    auto epochs = ListWalEpochs(dir_);
    ASSERT_TRUE(epochs.ok());
    EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{2}));

    Advance(*engine, 1);
    before = TopForecast(*engine);
  }

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  // Only the post-checkpoint period replays: 3 inserts.
  EXPECT_EQ(stats.wal_records_replayed, 3u);
  EXPECT_EQ(stats.inserts, 6u);        // checkpoint counters + replay
  EXPECT_EQ(stats.time_advances, 2u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(RecoveryTest, FailedCheckpointLeavesARecoverableDirectory) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 1);
    failpoint::Enable(kFailpointCheckpointWrite, failpoint::Policy::Always());
    EXPECT_FALSE(engine->CheckpointNow().ok());
    failpoint::Disable(kFailpointCheckpointWrite);
    EXPECT_EQ(engine->stats().checkpoint_failures, 1u);
    EXPECT_EQ(engine->stats().checkpoints_completed, 0u);

    // The rotation happened but the checkpoint did not: both segments
    // survive and replay must span the epoch boundary.
    auto epochs = ListWalEpochs(dir_);
    ASSERT_TRUE(epochs.ok());
    EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{1, 2}));

    Advance(*engine, 1);
    before = TopForecast(*engine);
  }

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  // Everything replays: catalog + two full periods.
  EXPECT_EQ(stats.wal_records_replayed, 7u);
  EXPECT_EQ(stats.time_advances, 2u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(RecoveryTest, TornTailIsDetectedAndDropsOnlyTheLastRecord) {
  std::size_t pending_before = 0;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 1);
    const std::vector<NodeId> bases = engine->graph().base_nodes();
    const std::int64_t t =
        engine->snapshot()->graph->series(bases[0]).end_time();
    ASSERT_TRUE(engine->InsertFact(bases[0], t, 1.0).ok());
    ASSERT_TRUE(engine->InsertFact(bases[1], t, 2.0).ok());
    pending_before = engine->pending_inserts();
    ASSERT_EQ(pending_before, 2u);
  }

  // Simulate a torn final write: cut a few bytes off the newest segment.
  auto epochs = ListWalEpochs(dir_);
  ASSERT_TRUE(epochs.ok());
  const std::string last = WalPath(dir_, epochs.value().back());
  auto segment = ReadWalSegment(last);
  ASSERT_TRUE(segment.ok());
  ASSERT_EQ(::truncate(last.c_str(),
                       static_cast<off_t>(segment.value().valid_bytes - 3)),
            0);

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.torn_tail_detected, 1u);
  // Exactly the torn insert is gone; everything before it survived.
  EXPECT_EQ(engine->pending_inserts(), pending_before - 1);
  EXPECT_EQ(stats.time_advances, 1u);
  EXPECT_FALSE(TopForecast(*engine).empty());
}

TEST_F(RecoveryTest, QuarantineSurvivesReopen) {
  {
    EngineOptions options = DurableOptions();
    options.reestimate_after_updates = 2;
    options.quarantine_after_refit_failures = 1;
    auto engine = Open(options);
    LoadConfig(*engine);
    Advance(*engine, 3);  // invalidates every model
    failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
    for (int q = 0; q < 2; ++q) {
      ASSERT_TRUE(engine->ForecastNode(engine->graph().top_node(), 1).ok());
    }
    failpoint::DisableAll();
    ASSERT_GE(engine->stats().quarantines, 1u);
  }

  EngineOptions options = DurableOptions();
  options.reestimate_after_updates = 2;
  options.quarantine_after_refit_failures = 1;
  auto engine = Open(options);
  EXPECT_GE(engine->stats().quarantines, 1u);
  bool saw_quarantined = false;
  for (const auto& [node, live] : engine->snapshot()->models) {
    if (live->quarantined) saw_quarantined = true;
  }
  EXPECT_TRUE(saw_quarantined);
}

TEST_F(RecoveryTest, ModelReestimateSurvivesReopen) {
  std::vector<double> before;
  {
    EngineOptions options = DurableOptions();
    options.reestimate_after_updates = 2;
    auto engine = Open(options);
    LoadConfig(*engine);
    Advance(*engine, 3);  // invalidates every model
    // The query triggers a lazy refit whose publication is WAL-logged.
    before = TopForecast(*engine);
    ASSERT_GE(engine->stats().reestimates, 1u);
  }

  EngineOptions options = DurableOptions();
  options.reestimate_after_updates = 2;
  auto engine = Open(options);
  // The re-estimated model replays from its kModelInstall record: the same
  // query answers identically without refitting again.
  const std::size_t reestimates_before = engine->stats().reestimates;
  const std::vector<double> after = TopForecast(*engine);
  EXPECT_EQ(engine->stats().reestimates, reestimates_before);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(RecoveryTest, RecoveryCountersAppearInPrometheusText) {
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 1);
  }
  auto engine = Open(DurableOptions());
  const std::string text = engine->stats().ToPrometheusText();
  for (const char* metric :
       {"f2db_wal_records_appended_total", "f2db_wal_bytes_total",
        "f2db_wal_records_replayed_total", "f2db_torn_tail_detected",
        "f2db_checkpoints_completed_total", "f2db_checkpoint_failures_total",
        "f2db_recovery_duration_ms", "f2db_last_checkpoint_age_seconds"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
}

TEST_F(RecoveryTest, ServerShutdownWritesACheckpoint) {
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 1);

    F2dbServer server(*engine, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    server.Shutdown();
    EXPECT_EQ(engine->stats().checkpoints_completed, 1u);
  }

  // The shutdown checkpoint makes the next open replay-free.
  auto engine = Open(DurableOptions());
  EXPECT_EQ(engine->stats().wal_records_replayed, 0u);
  EXPECT_EQ(engine->stats().time_advances, 1u);
  EXPECT_FALSE(TopForecast(*engine).empty());
}

}  // namespace
}  // namespace f2db
