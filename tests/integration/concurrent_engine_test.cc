// Concurrency stress test for the snapshot-isolated engine core.
//
// N reader threads issue ForecastNode / ExecuteSql / interval queries while
// one writer thread streams full InsertFact batches. Verified invariants:
//   - no torn reads: every forecast a reader computes is exactly the
//     forecast implied by ONE published snapshot (scheme sources, weight,
//     and model states all from the same state);
//   - snapshot frontiers only move forward, and within any snapshot all
//     base series share one frontier (batched advance is atomic);
//   - pinned snapshots give repeatable reads while the writer runs;
//   - the final stats counters add up to exactly the work performed.
//
// The test is also the ThreadSanitizer workload (see the `tsan` CMake
// preset); it deliberately exercises the lazy re-estimation publish race
// via a small re-estimation threshold.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr int kReaders = 4;
constexpr int kReaderIterations = 120;
constexpr int kWriterPeriods = 24;

/// Recomputes a node's forecast straight from one pinned snapshot: sum of
/// the scheme sources' model forecasts times the snapshot weight. Any model
/// flagged invalid is skipped by the caller (the engine may refit), so this
/// is only called for fully valid schemes.
std::vector<double> SnapshotForecast(const EngineSnapshot& snap, NodeId node,
                                     std::size_t horizon) {
  std::vector<double> combined(horizon, 0.0);
  for (NodeId source : snap.schemes[node]) {
    const auto live = snap.FindModel(source);
    const std::vector<double> forecast = live->model->Forecast(horizon);
    for (std::size_t h = 0; h < horizon; ++h) combined[h] += forecast[h];
  }
  const double weight = snap.Weight(snap.schemes[node], node);
  for (double& v : combined) v *= weight;
  return combined;
}

/// True when every scheme source of `node` carries a currently valid model.
bool AllSourcesValid(const EngineSnapshot& snap, NodeId node) {
  for (NodeId source : snap.schemes[node]) {
    const auto live = snap.FindModel(source);
    if (live == nullptr || live->invalid) return false;
  }
  return true;
}

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  ConcurrentEngineTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions advisor_options;
    advisor_options.models_per_iteration = 4;
    advisor_options.stop.max_iterations = 12;
    AdvisorBuilder builder(advisor_options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  /// Builds a loaded engine with the given knobs.
  std::unique_ptr<F2dbEngine> MakeEngine(EngineOptions options) {
    auto engine = std::make_unique<F2dbEngine>(
        testing::MakeFigure2Cube(60, 0.05), options);
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

TEST_F(ConcurrentEngineTest, ReadersNeverSeeTornStateUnderInsertLoad) {
  EngineOptions options;
  options.reestimate_after_updates = 4;  // exercise the refit publish race
  auto engine = MakeEngine(options);

  const std::vector<NodeId> bases = engine->graph().base_nodes();
  const NodeId top = engine->graph().top_node();
  const std::size_t num_nodes = engine->graph().num_nodes();

  std::atomic<bool> writer_done{false};
  std::atomic<std::size_t> reader_queries{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int period = 0; period < kWriterPeriods; ++period) {
      const std::int64_t t =
          engine->snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        const double value = 10.0 + static_cast<double>(period + 1) +
                             static_cast<double>(i);
        if (!engine->InsertFact(bases[i], t, value).ok()) ++failures;
      }
    }
    writer_done = true;
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::int64_t last_frontier = 0;
      for (int i = 0; i < kReaderIterations; ++i) {
        const NodeId node =
            static_cast<NodeId>((r * 31 + i * 7) % num_nodes);

        // Plain query: must succeed and be finite.
        auto forecast = engine->ForecastNode(node, 2);
        if (!forecast.ok()) {
          ++failures;
          continue;
        }
        ++reader_queries;
        for (double v : forecast.value()) {
          if (!std::isfinite(v)) ++failures;
        }

        // Snapshot-consistency: pin a snapshot and check (a) repeatable
        // reads through the engine, (b) the engine result equals the
        // forecast recomputed by hand from that snapshot alone.
        const SnapshotPtr snap = engine->snapshot();
        if (snap->graph->series(bases[0]).end_time() < last_frontier) {
          ++failures;  // published frontiers must be monotone
        }
        last_frontier = snap->graph->series(bases[0]).end_time();
        for (NodeId base : bases) {
          if (snap->graph->series(base).end_time() != last_frontier) {
            ++failures;  // torn advance: bases must share one frontier
          }
        }
        if (AllSourcesValid(*snap, node)) {
          auto pinned = engine->ForecastNode(snap, node, 2);
          if (!pinned.ok()) {
            ++failures;
            continue;
          }
          ++reader_queries;
          const std::vector<double> manual =
              SnapshotForecast(*snap, node, 2);
          for (std::size_t h = 0; h < 2; ++h) {
            if (std::abs(pinned.value()[h] - manual[h]) > 1e-9) ++failures;
          }
        }

        // Occasionally go through the SQL front end as well.
        if (i % 16 == 0) {
          auto result = engine->ExecuteSql(
              "SELECT time, SUM(sales) FROM facts GROUP BY time "
              "AS OF now() + '2'");
          if (result.ok()) {
            ++reader_queries;
          } else {
            ++failures;
          }
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(failures.load(), 0);

  // Counters add up exactly: every reader query and writer insert counted.
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.queries, reader_queries.load());
  EXPECT_EQ(stats.inserts, bases.size() * kWriterPeriods);
  EXPECT_EQ(stats.time_advances, static_cast<std::size_t>(kWriterPeriods));
  EXPECT_EQ(engine->pending_inserts(), 0u);
  EXPECT_EQ(engine->graph().series(top).end_time(),
            60 + static_cast<std::int64_t>(kWriterPeriods));
}

TEST_F(ConcurrentEngineTest, IntervalQueriesRaceWithParallelMaintenance) {
  EngineOptions options;
  options.reestimate_after_updates = 3;
  options.maintenance_threads = 2;  // writer fans updates out over the pool
  auto engine = MakeEngine(options);

  const std::vector<NodeId> bases = engine->graph().base_nodes();
  const NodeId top = engine->graph().top_node();
  std::atomic<int> failures{0};
  std::atomic<std::size_t> reader_queries{0};

  std::thread writer([&] {
    for (int period = 0; period < kWriterPeriods; ++period) {
      const std::int64_t t =
          engine->snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        if (!engine->InsertFact(bases[i], t, 12.0 + double(i)).ok()) {
          ++failures;
        }
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReaderIterations; ++i) {
        auto intervals = engine->ForecastNodeWithIntervals(top, 2, 0.9);
        if (!intervals.ok()) {
          ++failures;
          continue;
        }
        ++reader_queries;
        for (const ForecastInterval& interval : intervals.value()) {
          if (!(interval.lower <= interval.point &&
                interval.point <= interval.upper)) {
            ++failures;  // a torn read would scramble the moments
          }
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->stats().queries, reader_queries.load());
  EXPECT_EQ(engine->stats().inserts, bases.size() * kWriterPeriods);
}

}  // namespace
}  // namespace f2db
