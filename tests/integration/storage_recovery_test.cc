// Storage-lifecycle integration tests (DESIGN.md §13): compaction seals
// WAL history into compressed segments and truncates the log, recovery
// bulk-loads the sealed chain and replays only the unsealed tail, and
// retention drops old raw history without disturbing model state,
// aggregates, or derivation weights — differential-checked against the
// ReferenceOracle.

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "core/evaluator.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "engine/wal.h"
#include "storage/fsio.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "storage/store.h"
#include "testing/crash.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property.h"
#include "testing/test_cubes.h"
#include "testing/workload.h"

namespace f2db {
namespace {

constexpr std::size_t kHorizon = 3;
constexpr double kRelTol = 1e-6;
constexpr double kAbsTol = 1e-8;

bool ValuesClose(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::abs(a - b) <=
         kAbsTol + kRelTol * std::max(std::abs(a), std::abs(b));
}

// Hook state for CheckpointCannotInterleaveWithRetentionDrop: on the
// retention (second) manifest rename of the armed compaction, request a
// concurrent checkpoint and give it ample time to land. With correct
// serialization the checkpoint cannot complete until the compaction —
// including the in-memory history drop — has finished.
std::atomic<int> g_manifest_renames{0};
std::atomic<bool> g_checkpoint_requested{false};
std::atomic<bool> g_checkpoint_done{false};

void RetentionRaceHook(const char* point) {
  if (std::string_view(point) != "after_manifest_rename") return;
  if (g_manifest_renames.fetch_add(1) + 1 != 2) return;
  g_checkpoint_requested.store(true);
  for (int i = 0; i < 100 && !g_checkpoint_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

NodeAddress ToNodeAddress(const testing::OracleAddress& address) {
  NodeAddress out;
  out.coords.resize(address.coords.size());
  for (std::size_t d = 0; d < address.coords.size(); ++d) {
    out.coords[d] = {static_cast<LevelIndex>(address.coords[d].level),
                     static_cast<ValueIndex>(address.coords[d].value)};
  }
  return out;
}

class CompactionTest : public ::testing::Test {
 protected:
  CompactionTest()
      : evaluator_graph_(testing::MakeRegionCube(48, 0.0)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(4)) {
    AdvisorOptions options;
    options.stop.max_iterations = 8;
    options.seed = 123;
    AdvisorBuilder builder(options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  void SetUp() override {
    char tmpl[] = "/tmp/f2db_storage_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { testing::RemoveDirectoryTree(dir_); }

  EngineOptions DurableOptions() const {
    EngineOptions options;
    options.maintenance_threads = 1;
    options.data_dir = dir_;
    options.fsync_policy = FsyncPolicy::kAlways;
    return options;
  }

  std::unique_ptr<F2dbEngine> Open(EngineOptions options) {
    auto engine = F2dbEngine::Open(testing::MakeRegionCube(48, 0.0), options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  void LoadConfig(F2dbEngine& engine) {
    const Status loaded = engine.LoadConfiguration(config_, evaluator_);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  }

  static void Advance(F2dbEngine& engine, int periods) {
    const std::vector<NodeId> bases = engine.graph().base_nodes();
    for (int period = 0; period < periods; ++period) {
      const std::int64_t t =
          engine.snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        const Status status =
            engine.InsertFact(bases[i], t, 10.0 + static_cast<double>(i));
        ASSERT_TRUE(status.ok()) << status.message();
      }
    }
  }

  static std::vector<double> TopForecast(const F2dbEngine& engine) {
    auto forecast = engine.ForecastNode(engine.graph().top_node(), kHorizon);
    EXPECT_TRUE(forecast.ok()) << forecast.status().ToString();
    return forecast.ok() ? forecast.value() : std::vector<double>{};
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
  std::string dir_;
};

TEST_F(CompactionTest, InMemoryEngineRejectsCompactNow) {
  F2dbEngine engine(testing::MakeRegionCube(48, 0.0));
  EXPECT_EQ(engine.CompactNow().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CompactionTest, CompactNowSealsHistoryAndTruncatesWal) {
  auto engine = Open(DurableOptions());
  LoadConfig(*engine);
  Advance(*engine, 4);

  const Status compacted = engine->CompactNow();
  ASSERT_TRUE(compacted.ok()) << compacted.ToString();

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.compactions_completed, 1u);
  EXPECT_EQ(stats.compaction_failures, 0u);
  EXPECT_EQ(stats.segments_sealed, 1u);
  // 3 base series x (48 stored + 4 advanced) periods.
  EXPECT_EQ(stats.segment_records_sealed, 3u * 52u);
  EXPECT_EQ(stats.segments_live, 1u);
  EXPECT_GT(stats.segment_live_bytes, 0u);

  // The WAL was rotated and the sealed prefix deleted; only the rewritten
  // tail epoch remains.
  auto epochs = ListWalEpochs(dir_);
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{2}));

  // The manifest covers the full stored range at the cut.
  auto manifest = storage::ReadManifestFile(storage::SegmentsDirFor(dir_));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value().wal_epoch, 2u);
  EXPECT_EQ(manifest.value().sealed_to - manifest.value().sealed_from, 52);
  ASSERT_EQ(manifest.value().segments.size(), 1u);
}

TEST_F(CompactionTest, ReopenAfterCompactionIsBitIdentical) {
  std::vector<double> before;
  std::size_t pending = 0;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 3);
    ASSERT_TRUE(engine->CompactNow().ok());
    Advance(*engine, 2);
    // One buffered fact so the unsealed tail carries pending state too.
    const std::vector<NodeId> bases = engine->graph().base_nodes();
    const std::int64_t t =
        engine->snapshot()->graph->series(bases[0]).end_time();
    ASSERT_TRUE(engine->InsertFact(bases[0], t, 42.0).ok());
    before = TopForecast(*engine);
    pending = engine->pending_inserts();
    ASSERT_EQ(pending, 1u);
  }

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  // History came from the sealed segment, not WAL replay: the tail holds
  // the rewritten catalog plus only the post-compaction records.
  EXPECT_EQ(stats.segment_records_recovered, 3u * 51u);
  EXPECT_EQ(stats.wal_records_replayed, 1u + 2u * 3u + 1u);
  EXPECT_EQ(stats.inserts, 3u * 5u + 1u);
  EXPECT_EQ(stats.time_advances, 5u);
  EXPECT_EQ(engine->pending_inserts(), pending);

  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(CompactionTest, SecondCompactionExtendsTheChain) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 3);
    ASSERT_TRUE(engine->CompactNow().ok());
    Advance(*engine, 4);
    ASSERT_TRUE(engine->CompactNow().ok());
    const EngineStats stats = engine->stats();
    EXPECT_EQ(stats.compactions_completed, 2u);
    EXPECT_EQ(stats.segments_sealed, 2u);
    EXPECT_EQ(stats.segments_live, 2u);
    auto epochs = ListWalEpochs(dir_);
    ASSERT_TRUE(epochs.ok());
    EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{3}));
    before = TopForecast(*engine);
  }

  auto engine = Open(DurableOptions());
  EXPECT_EQ(engine->stats().segment_records_recovered, 3u * 55u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(CompactionTest, CompactionAfterCheckpointPrefersNewerArtifact) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    ASSERT_TRUE(engine->CheckpointNow().ok());
    Advance(*engine, 2);
    ASSERT_TRUE(engine->CompactNow().ok());
    before = TopForecast(*engine);
  }
  // The manifest's WAL epoch (3) is strictly newer than the checkpoint's
  // (2), so recovery restores from segments.
  auto engine = Open(DurableOptions());
  EXPECT_GT(engine->stats().segment_records_recovered, 0u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(CompactionTest, ShardedCompactNowSealsEveryShard) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.engine.maintenance_threads = 1;
  options.engine.data_dir = dir_;
  options.engine.fsync_policy = FsyncPolicy::kAlways;
  std::size_t inserts = 0;
  {
    TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.0);
    auto engine = ShardedEngine::Open(graph, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (int period = 0; period < 3; ++period) {
      const std::int64_t t = 48 + period;
      for (const char* city : {"C1", "C2", "C3", "C4"}) {
        for (const char* product : {"P1", "P2"}) {
          ASSERT_TRUE(
              engine.value()->InsertFact({city, product}, t, 5.0).ok());
          ++inserts;
        }
      }
    }
    const Status compacted = engine.value()->CompactNow();
    ASSERT_TRUE(compacted.ok()) << compacted.ToString();
    const EngineStats total = engine.value()->stats();
    const std::size_t active =
        engine.value()->active_partitions().size();
    EXPECT_EQ(total.compactions_completed, active);
    EXPECT_EQ(total.segments_sealed, active);
    // Every shard's manifest exists on disk.
    for (const std::size_t p : engine.value()->active_partitions()) {
      const std::string shard_dir = dir_ + "/shard-" + std::to_string(p);
      auto manifest =
          storage::ReadManifestFile(storage::SegmentsDirFor(shard_dir));
      EXPECT_TRUE(manifest.ok()) << "shard " << p;
    }
  }

  TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.0);
  auto engine = ShardedEngine::Open(graph, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const EngineStats total = engine.value()->stats();
  EXPECT_EQ(total.inserts, inserts);
  EXPECT_GT(total.segment_records_recovered, 0u);
  // Each shard advanced once per complete round.
  EXPECT_EQ(total.time_advances,
            3u * engine.value()->active_partitions().size());
}

// ---- recovery fallback and loud-failure paths ----------------------------

class SegmentRecoveryTest : public CompactionTest {};

TEST_F(SegmentRecoveryTest, HalfWrittenSegmentFallsBackToWalReplay) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    before = TopForecast(*engine);
  }
  // Simulate a crash between WriteSegment and the manifest commit: a
  // sealed-looking segment file exists but nothing references it.
  const std::string segments_dir = storage::SegmentsDirFor(dir_);
  storage::SegmentData orphan;
  orphan.seq = 1;
  orphan.start_time = 0;
  orphan.count = 2;
  orphan.series.push_back({0, {1.0, 2.0}});
  ASSERT_TRUE(storage::WriteSegmentFile(segments_dir, orphan, nullptr).ok());

  auto engine = Open(DurableOptions());
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.segment_records_recovered, 0u);  // WAL replay, no chain
  EXPECT_GT(stats.wal_records_replayed, 0u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
  // The orphan was swept by the store open.
  EXPECT_EQ(
      storage::ReadSegmentFile(storage::SegmentPath(segments_dir, 1))
          .status()
          .code(),
      StatusCode::kNotFound);
}

TEST_F(SegmentRecoveryTest, CorruptSealedSegmentFailsLoudly) {
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    ASSERT_TRUE(engine->CompactNow().ok());
  }
  // After compaction the sealed WAL prefix is deleted — the segment IS the
  // only copy of that history. Corrupting it must fail recovery loudly
  // instead of silently serving a shorter history.
  auto manifest = storage::ReadManifestFile(storage::SegmentsDirFor(dir_));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest.value().segments.size(), 1u);
  const std::string path = storage::SegmentPath(
      storage::SegmentsDirFor(dir_), manifest.value().segments[0].seq);
  auto raw = storage::ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string tampered = raw.value();
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x10);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(tampered.data(), 1, tampered.size(), f);
    std::fclose(f);
  }

  auto engine =
      F2dbEngine::Open(testing::MakeRegionCube(48, 0.0), DurableOptions());
  EXPECT_FALSE(engine.ok());
}

TEST_F(SegmentRecoveryTest, CompactionAfterFallbackResealsTheChain) {
  std::vector<double> before;
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    ASSERT_TRUE(engine->CheckpointNow().ok());  // checkpoint at epoch 2
    Advance(*engine, 2);
    // Preserve the checkpoint's WAL epoch across the compaction: this is
    // the crash-before-wal-delete window the fallback path covers — the
    // manifest committed but the sealed epochs were never unlinked.
    auto epoch2 = storage::ReadFileToString(WalPath(dir_, 2));
    ASSERT_TRUE(epoch2.ok()) << epoch2.status().ToString();
    ASSERT_TRUE(engine->CompactNow().ok());  // manifest at epoch 3
    {
      std::ofstream out(WalPath(dir_, 2),
                        std::ios::binary | std::ios::trunc);
      out << epoch2.value();
    }
    before = TopForecast(*engine);
  }
  // Bit-rot the sealed segment so the chain fails validation.
  auto manifest = storage::ReadManifestFile(storage::SegmentsDirFor(dir_));
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest.value().segments.size(), 1u);
  const std::string path = storage::SegmentPath(
      storage::SegmentsDirFor(dir_), manifest.value().segments[0].seq);
  auto raw = storage::ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string tampered = raw.value();
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << tampered;
  }

  {
    // Recovery falls back to checkpoint + WAL replay...
    auto engine = Open(DurableOptions());
    EXPECT_EQ(engine->stats().segment_records_recovered, 0u);
    const std::vector<double> fallback = TopForecast(*engine);
    ASSERT_EQ(fallback.size(), before.size());
    for (std::size_t h = 0; h < fallback.size(); ++h) {
      EXPECT_DOUBLE_EQ(fallback[h], before[h]) << "h=" << h;
    }
    // ...and the next compaction must RESEAL the chain from memory.
    // Extending the invalid chain instead would commit a higher-epoch
    // manifest over it and truncate the WAL epochs the fallback just
    // used — the reopen below would then fail with lost history.
    ASSERT_TRUE(engine->CompactNow().ok());
  }

  auto engine = Open(DurableOptions());
  EXPECT_GT(engine->stats().segment_records_recovered, 0u);
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_DOUBLE_EQ(after[h], before[h]) << "h=" << h;
  }
}

TEST_F(SegmentRecoveryTest, MissingWalEpochFailsLoudly) {
  {
    auto engine = Open(DurableOptions());
    LoadConfig(*engine);
    Advance(*engine, 2);
    ASSERT_TRUE(engine->CompactNow().ok());
  }
  // The manifest references WAL epoch 2; deleting it is unrecoverable
  // damage and must be reported, not skipped.
  auto epochs = ListWalEpochs(dir_);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs.value(), (std::vector<std::uint64_t>{2}));
  ASSERT_EQ(::unlink(WalPath(dir_, 2).c_str()), 0);

  auto engine =
      F2dbEngine::Open(testing::MakeRegionCube(48, 0.0), DurableOptions());
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("WAL"), std::string::npos)
      << engine.status().ToString();
}

// ---- retention -----------------------------------------------------------

class RetentionTest : public CompactionTest {};

TEST_F(RetentionTest, RetentionDropsOldSegmentsAndPreservesForecasts) {
  EngineOptions options = DurableOptions();
  options.retention_window = 16;

  // A never-compacted in-memory control over the same insert stream.
  F2dbEngine control(testing::MakeRegionCube(48, 0.0));
  ASSERT_TRUE(control.LoadConfiguration(config_, evaluator_).ok());

  auto engine = Open(options);
  LoadConfig(*engine);
  for (int round = 0; round < 4; ++round) {
    Advance(*engine, 12);
    Advance(control, 12);
    ASSERT_TRUE(engine->CompactNow().ok());
  }

  const EngineStats stats = engine->stats();
  EXPECT_GT(stats.retention_segments_deleted, 0u);
  EXPECT_GT(stats.retention_records_dropped, 0u);
  EXPECT_LT(stats.segments_live, stats.segments_sealed);

  // Raw history was dropped from memory...
  const std::vector<NodeId> bases = engine->graph().base_nodes();
  for (const NodeId node : bases) {
    const TimeSeries& series = engine->snapshot()->graph->series(node);
    EXPECT_LT(series.size(), 48u + 4u * 12u);
    // ...but never inside the retention window.
    EXPECT_GE(series.size(), options.retention_window);
    EXPECT_EQ(series.end_time(), control.snapshot()
                                     ->graph->series(node)
                                     .end_time());
  }

  // Model state, aggregates, and derivation weights are untouched: every
  // forecast matches the full-history control bit for bit.
  for (const NodeId node :
       {engine->graph().top_node(), bases[0], bases[1], bases[2]}) {
    auto got = engine->ForecastNode(node, kHorizon);
    auto want = control.ForecastNode(node, kHorizon);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got.value().size(), want.value().size());
    for (std::size_t h = 0; h < got.value().size(); ++h) {
      EXPECT_DOUBLE_EQ(got.value()[h], want.value()[h])
          << "node " << node << " h=" << h;
    }
  }

  // And the trimmed state survives a reopen. Tolerance, not bit-equality:
  // recovery recomputes history sums as retained-sum + retention offset,
  // which regroups the floating-point additions.
  std::vector<double> before = TopForecast(*engine);
  engine.reset();
  auto reopened = Open(options);
  EXPECT_GT(reopened->stats().segment_records_recovered, 0u);
  const std::vector<double> after = TopForecast(*reopened);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_TRUE(ValuesClose(after[h], before[h]))
        << "h=" << h << ": " << before[h] << " vs " << after[h];
  }
}

TEST_F(RetentionTest, CheckpointCannotInterleaveWithRetentionDrop) {
  // A checkpoint that lands between the pruned-manifest commit and the
  // in-memory DropHistoryBefore would snapshot the still-undropped
  // series at a strictly higher WAL epoch; recovery would then compute
  // history sums as full-series sum PLUS the pruned offsets, silently
  // double-counting the retained prefix in every derivation weight. The
  // storage hook below invites exactly that interleaving; CheckpointNow's
  // compaction serialization must refuse it.
  EngineOptions options = DurableOptions();
  options.retention_window = 8;

  // A never-compacted in-memory control over the same insert stream.
  F2dbEngine control(testing::MakeRegionCube(48, 0.0));
  ASSERT_TRUE(control.LoadConfiguration(config_, evaluator_).ok());

  std::vector<double> before;
  {
    auto engine = Open(options);
    LoadConfig(*engine);
    Advance(*engine, 12);
    Advance(control, 12);
    ASSERT_TRUE(engine->CompactNow().ok());  // one segment, nothing pruned
    Advance(*engine, 12);
    Advance(control, 12);

    g_manifest_renames.store(0);
    g_checkpoint_requested.store(false);
    g_checkpoint_done.store(false);
    storage::SetStorageCrashHook(&RetentionRaceHook);
    Status checkpoint_status;
    std::thread checkpointer([&engine, &checkpoint_status] {
      while (!g_checkpoint_requested.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      checkpoint_status = engine->CheckpointNow();
      g_checkpoint_done.store(true);
    });
    // This compaction prunes the first segment (entirely older than
    // frontier - window); its second manifest rename fires the hook.
    ASSERT_TRUE(engine->CompactNow().ok());
    g_checkpoint_requested.store(true);  // in case the hook never fired
    checkpointer.join();
    storage::SetStorageCrashHook(nullptr);
    ASSERT_TRUE(checkpoint_status.ok()) << checkpoint_status.ToString();
    EXPECT_EQ(g_manifest_renames.load(), 2);
    EXPECT_GT(engine->stats().retention_segments_deleted, 0u);
    before = TopForecast(*engine);
  }

  // Whichever artifact wins recovery, history sums must match the
  // full-history control exactly (up to float regrouping) — a
  // double-counted prefix would be off by the entire dropped range.
  auto engine = Open(options);
  const SnapshotPtr snap = engine->snapshot();
  const SnapshotPtr want = control.snapshot();
  for (NodeId node = 0; node < snap->graph->num_nodes(); ++node) {
    EXPECT_TRUE(ValuesClose(snap->history_sums[node],
                            want->graph->series(node).Sum()))
        << "node " << node << ": " << snap->history_sums[node] << " vs "
        << want->graph->series(node).Sum();
  }
  const std::vector<double> after = TopForecast(*engine);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < after.size(); ++h) {
    EXPECT_TRUE(ValuesClose(after[h], before[h]))
        << "h=" << h << ": " << before[h] << " vs " << after[h];
  }
}

TEST_F(RetentionTest, RetentionDifferentialAgainstReferenceOracle) {
  // Seeded workloads through a durable engine with an aggressive (but
  // warm-up-respecting) retention window and frequent compactions; the
  // ReferenceOracle keeps FULL history. Forecast agreement at every
  // address proves retention never dropped anything a forecast needs:
  // model state, aggregates, and history-sum derivation weights.
  const std::uint64_t base = testing::PropertySeed();
  const std::size_t iterations = testing::PropertyIterations(6);
  std::size_t total_dropped = 0;

  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed =
        testing::SubSeed(base, "retention-" + std::to_string(i));
    const testing::WorkloadSpec spec = testing::GenerateWorkload(
        seed, i % testing::NumWorkloadShapes(),
        /*inject_refit_failures=*/false);
    char tmpl[] = "/tmp/f2db_retention_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::size_t window = std::max<std::size_t>(8, spec.history_length / 2);

    EngineOptions options;
    options.maintenance_threads = 1;
    options.reestimate_after_updates = 0;
    options.data_dir = dir;
    options.fsync_policy = FsyncPolicy::kAlways;
    options.retention_window = window;

    auto graph = testing::BuildWorkloadGraph(spec);
    ASSERT_TRUE(graph.ok());
    auto engine = F2dbEngine::Open(std::move(graph.value()), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto config_graph = testing::BuildWorkloadGraph(spec);
    ASSERT_TRUE(config_graph.ok());
    auto config =
        testing::BuildWorkloadConfiguration(spec, config_graph.value());
    ASSERT_TRUE(config.ok());
    const ConfigurationEvaluator evaluator(engine.value()->graph(), 1.0);
    ASSERT_TRUE(
        engine.value()->LoadConfiguration(config.value(), evaluator).ok());

    testing::ReferenceOracle oracle(spec.dims);
    for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
      oracle.SetBaseSeries(cell, spec.base_history[cell]);
    }
    testing::InstallOracleConfiguration(spec, config.value(),
                                        config_graph.value(), oracle);

    const std::size_t num_cells = oracle.num_base_cells();
    std::vector<NodeId> cells(num_cells);
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      auto node = engine.value()->graph().NodeFor(
          ToNodeAddress(oracle.CellAddress(cell)));
      ASSERT_TRUE(node.ok());
      cells[cell] = node.value();
    }

    // Drive 3x the window in complete rounds, compacting every `window`
    // rounds so retention repeatedly crosses segment boundaries.
    const std::size_t rounds = 3 * window + 4;
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::int64_t t = oracle.frontier();
      for (std::size_t cell = 0; cell < num_cells; ++cell) {
        const double value =
            50.0 + static_cast<double>((round * 31 + cell * 7) % 17);
        ASSERT_EQ(oracle.Insert(cell, t, value),
                  testing::OracleInsert::kAccepted);
        const Status inserted = engine.value()->InsertFact(cells[cell], t, value);
        ASSERT_TRUE(inserted.ok()) << inserted.ToString();
      }
      if ((round + 1) % window == 0) {
        ASSERT_TRUE(engine.value()->CompactNow().ok()) << "round " << round;
      }
    }
    ASSERT_TRUE(engine.value()->CompactNow().ok());
    total_dropped += engine.value()->stats().retention_records_dropped;

    // Counters and pending state agree with the oracle.
    const EngineStats stats = engine.value()->stats();
    EXPECT_EQ(stats.inserts, rounds * num_cells);
    EXPECT_EQ(stats.time_advances, oracle.advances());
    EXPECT_EQ(engine.value()->pending_inserts(), oracle.pending_inserts());

    // Every address' forecast within the differential tolerances.
    for (const testing::OracleAddress& address : oracle.AllAddresses()) {
      const auto want = oracle.Forecast(address, kHorizon);
      if (!want.has_value()) continue;
      auto node = engine.value()->graph().NodeFor(ToNodeAddress(address));
      ASSERT_TRUE(node.ok());
      auto got = engine.value()->ForecastNode(node.value(), kHorizon);
      ASSERT_TRUE(got.ok()) << address.Key() << ": "
                            << got.status().ToString() << "\n"
                            << testing::ReplayHint(base);
      ASSERT_EQ(got.value().size(), want->size());
      for (std::size_t h = 0; h < want->size(); ++h) {
        EXPECT_TRUE(ValuesClose(got.value()[h], (*want)[h]))
            << address.Key() << " h=" << h << ": engine "
            << got.value()[h] << " vs oracle " << (*want)[h] << "\n"
            << testing::ReplayHint(base);
      }
    }

    // The retained history never shrinks inside the warm-up window.
    for (const NodeId node : engine.value()->graph().base_nodes()) {
      EXPECT_GE(engine.value()->snapshot()->graph->series(node).size(),
                window);
    }

    engine.value().reset();
    testing::RemoveDirectoryTree(dir);
  }

  // Across the run retention must actually have dropped history — the
  // agreement above would be vacuous otherwise.
  EXPECT_GT(total_dropped, 0u);
}

}  // namespace
}  // namespace f2db
