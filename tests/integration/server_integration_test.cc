// End-to-end serving-layer tests over real loopback sockets.
//
// Every test starts an F2dbServer on an ephemeral 127.0.0.1 port and talks
// to it through the blocking client library — the full path a remote
// client exercises: TCP, framing, admission control, worker dispatch,
// snapshot-pinned query execution, and response flushing. Covered:
//   - QUERY / INSERT / STATS / PING round trips;
//   - DegradationLevel annotations propagating over the wire (failpoint-
//     forced refit failures -> STALE_MODEL in the response header byte);
//   - admission-control load shedding answering kUnavailable while the
//     worker pool is saturated;
//   - graceful drain on SIGTERM: in-flight responses still delivered, new
//     work refused, sockets closed afterwards;
//   - protocol hardening: oversized frames answered-with-error and closed.

#include <gtest/gtest.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr char kHost[] = "127.0.0.1";
constexpr char kSumQuery[] =
    "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3'";

class ServerIntegrationTest : public ::testing::Test {
 protected:
  ServerIntegrationTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions advisor_options;
    advisor_options.models_per_iteration = 4;
    advisor_options.stop.max_iterations = 12;
    AdvisorBuilder builder(advisor_options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  void SetUp() override { failpoint::DisableAll(); }
  void TearDown() override { failpoint::DisableAll(); }

  /// A loaded engine; models invalidate after two incremental updates so
  /// the degradation tests can force lazy refits.
  std::unique_ptr<F2dbEngine> MakeEngine(EngineOptions options = {}) {
    if (options.reestimate_after_updates == 0) {
      options.reestimate_after_updates = 2;
    }
    auto engine = std::make_unique<F2dbEngine>(
        testing::MakeFigure2Cube(60, 0.05), options);
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  static void Advance(F2dbEngine& engine, int periods) {
    const std::vector<NodeId> bases = engine.graph().base_nodes();
    for (int period = 0; period < periods; ++period) {
      const std::int64_t t =
          engine.snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        const Status status =
            engine.InsertFact(bases[i], t, 10.0 + static_cast<double>(i));
        ASSERT_TRUE(status.ok()) << status.message();
      }
    }
  }

  /// Polls until the server reports `want` in-flight requests (5s bound).
  static bool WaitForInFlight(const F2dbServer& server, std::size_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (server.stats().in_flight_requests == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  /// Polls until the event loop has exited (5s bound).
  static bool WaitForStopped(const F2dbServer& server) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (!server.running()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

TEST_F(ServerIntegrationTest, PingQueryInsertStatsRoundTrip) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok()) << client.status().message();

  // PING: liveness, loop-thread inline.
  auto pong = client.value().Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().message();
  EXPECT_EQ(pong.value().type, FrameType::kPing);
  EXPECT_EQ(pong.value().status, StatusCode::kOk);
  EXPECT_EQ(pong.value().body, "PONG");

  // QUERY: full-fidelity forecast with row text.
  auto result = client.value().Query(kSumQuery);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().type, FrameType::kQuery);
  EXPECT_EQ(result.value().status, StatusCode::kOk);
  EXPECT_EQ(result.value().degradation, DegradationLevel::kNone);
  EXPECT_NE(result.value().body.find("-- node:"), std::string::npos);

  // EXPLAIN rides the QUERY frame.
  auto plan = client.value().Query(std::string("EXPLAIN ") + kSumQuery);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().status, StatusCode::kOk);
  EXPECT_NE(plan.value().body.find("Forecast Query Plan"), std::string::npos);

  // INSERT: one full period over the wire advances the cube's frontier.
  const std::int64_t t =
      engine->snapshot()->graph->series(engine->graph().base_nodes()[0])
          .end_time();
  const std::size_t advances_before = engine->stats().time_advances;
  for (const char* city : {"C1", "C2", "C3", "C4"}) {
    for (const char* product : {"P1", "P2"}) {
      auto inserted = client.value().Insert(
          std::string("INSERT INTO facts VALUES ('") + city + "', '" +
          product + "', " + std::to_string(t) + ", 12.5)");
      ASSERT_TRUE(inserted.ok()) << inserted.status().message();
      EXPECT_EQ(inserted.value().status, StatusCode::kOk)
          << inserted.value().body;
      EXPECT_NE(inserted.value().body.find("INSERT ok"), std::string::npos);
    }
  }
  EXPECT_EQ(engine->stats().inserts, 8u);
  EXPECT_EQ(engine->stats().time_advances, advances_before + 1);

  // STATS: combined engine + server Prometheus exposition.
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().status, StatusCode::kOk);
  EXPECT_NE(stats.value().body.find("f2db_queries_total"), std::string::npos);
  EXPECT_NE(stats.value().body.find("f2db_inserts_total 8"),
            std::string::npos);
  EXPECT_NE(stats.value().body.find("f2db_server_requests_total"),
            std::string::npos);
  EXPECT_NE(stats.value().body.find("f2db_server_inflight_requests"),
            std::string::npos);

  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerIntegrationTest, StatementErrorsComeBackAsStatusCodes) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // Unparsable SQL -> kInvalidArgument with the parser's message.
  auto bad = client.value().Query("SELECT nonsense");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, StatusCode::kInvalidArgument);
  EXPECT_FALSE(bad.value().body.empty());

  // Statement kind / frame type mismatches are refused, both directions.
  auto insert_in_query = client.value().Query(
      "INSERT INTO facts VALUES ('C1', 'P1', 60, 12.5)");
  ASSERT_TRUE(insert_in_query.ok());
  EXPECT_EQ(insert_in_query.value().status, StatusCode::kInvalidArgument);
  auto query_in_insert = client.value().Insert(kSumQuery);
  ASSERT_TRUE(query_in_insert.ok());
  EXPECT_EQ(query_in_insert.value().status, StatusCode::kInvalidArgument);

  // Unknown filter level -> engine resolution error, still a clean status.
  auto unknown = client.value().Query(
      "SELECT time, sales FROM facts WHERE galaxy = 'M31' AS OF now() + '1'");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown.value().status, StatusCode::kOk);
  // The connection survives application-level errors.
  auto pong = client.value().Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().body, "PONG");
}

TEST_F(ServerIntegrationTest, DegradedAnnotationsPropagateOverTheWire) {
  auto engine = MakeEngine();
  Advance(*engine, 3);  // invalidate every model
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  auto degraded = client.value().Query(kSumQuery);
  ASSERT_TRUE(degraded.ok()) << degraded.status().message();
  EXPECT_EQ(degraded.value().status, StatusCode::kOk);
  EXPECT_EQ(degraded.value().degradation, DegradationLevel::kStaleModel);
  EXPECT_NE(degraded.value().body.find("-- degraded: STALE_MODEL"),
            std::string::npos);
  failpoint::DisableAll();

  // Full fidelity resumes once the fault clears (fresh refit publishes).
  auto healthy = client.value().Query(kSumQuery);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().status, StatusCode::kOk);
  EXPECT_EQ(healthy.value().degradation, DegradationLevel::kNone);

  // The degradation counters crossed the wire too.
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("f2db_refit_failures_total"),
            std::string::npos);
}

TEST_F(ServerIntegrationTest, AdmissionControlShedsWithUnavailable) {
  auto engine = MakeEngine();
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());

  ServerOptions options;
  options.worker_threads = 1;
  options.admission_queue_limit = 2;
  options.worker_test_hook = [released] { released.wait(); };
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Two requests saturate the watermark: one running (blocked in the
  // hook), one queued.
  std::vector<std::thread> blocked;
  std::vector<Result<WireResponse>> outcomes(2, Status::Internal("unset"));
  for (int i = 0; i < 2; ++i) {
    blocked.emplace_back([&, i] {
      auto client = F2dbClient::Connect(kHost, server.port());
      ASSERT_TRUE(client.ok());
      outcomes[i] = client.value().Query(kSumQuery);
    });
    ASSERT_TRUE(WaitForInFlight(server, static_cast<std::size_t>(i + 1)));
  }

  // The next request is shed immediately with kUnavailable.
  auto shed_client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(shed_client.ok());
  auto shed = shed_client.value().Query(kSumQuery);
  ASSERT_TRUE(shed.ok()) << shed.status().message();
  EXPECT_EQ(shed.value().status, StatusCode::kUnavailable);
  EXPECT_NE(shed.value().body.find("overloaded"), std::string::npos);
  EXPECT_GE(server.stats().requests_shed, 1u);

  // PING bypasses admission: liveness stays observable under overload.
  auto pong = shed_client.value().Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().body, "PONG");

  // Release the workers; the two admitted requests complete at full
  // fidelity.
  release.set_value();
  for (auto& t : blocked) t.join();
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(outcome.value().status, StatusCode::kOk);
  }
  server.Shutdown();
}

TEST_F(ServerIntegrationTest, SigtermDrainsInFlightThenCloses) {
  auto engine = MakeEngine();
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());

  ServerOptions options;
  options.worker_threads = 1;
  options.worker_test_hook = [released] { released.wait(); };
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(F2dbServer::InstallSigtermShutdown(&server).ok());

  // One request in flight, blocked inside the worker.
  Result<WireResponse> in_flight_outcome = Status::Internal("unset");
  std::thread in_flight([&] {
    auto client = F2dbClient::Connect(kHost, server.port());
    ASSERT_TRUE(client.ok());
    in_flight_outcome = client.value().Query(kSumQuery);
  });
  ASSERT_TRUE(WaitForInFlight(server, 1));

  // SIGTERM starts the drain (the deployed shutdown path).
  ASSERT_EQ(::raise(SIGTERM), 0);

  // New work is refused while draining, with kUnavailable.
  auto late_client = F2dbClient::Connect(kHost, server.port());
  if (late_client.ok()) {
    auto late = late_client.value().Query(kSumQuery);
    if (late.ok()) {
      EXPECT_EQ(late.value().status, StatusCode::kUnavailable);
      EXPECT_NE(late.value().body.find("shutting down"), std::string::npos);
    }
  }

  // Unblock the worker: the in-flight response is still delivered.
  release.set_value();
  in_flight.join();
  ASSERT_TRUE(in_flight_outcome.ok()) << in_flight_outcome.status().message();
  EXPECT_EQ(in_flight_outcome.value().status, StatusCode::kOk);

  // The loop exits once drained; afterwards new connections are refused.
  EXPECT_TRUE(WaitForStopped(server));
  auto refused = F2dbClient::Connect(kHost, server.port());
  EXPECT_FALSE(refused.ok());

  server.Shutdown();
  ASSERT_TRUE(F2dbServer::InstallSigtermShutdown(nullptr).ok());
}

TEST_F(ServerIntegrationTest, OversizedFrameAnsweredThenConnectionClosed) {
  auto engine = MakeEngine();
  ServerOptions options;
  options.max_frame_bytes = 1024;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // A 4 KiB statement exceeds the server's 1 KiB frame cap: the server
  // answers with a protocol error and closes the stream.
  auto oversized = client.value().Query(std::string(4096, 'x'));
  ASSERT_TRUE(oversized.ok()) << oversized.status().message();
  EXPECT_EQ(oversized.value().status, StatusCode::kInvalidArgument);
  EXPECT_NE(oversized.value().body.find("exceeds"), std::string::npos);
  EXPECT_GE(server.stats().protocol_errors, 1u);

  // The stream is gone: the next call fails at the transport level.
  auto after = client.value().Ping();
  EXPECT_FALSE(after.ok());
}

TEST_F(ServerIntegrationTest, ManyConcurrentConnectionsAllServed) {
  auto engine = MakeEngine();
  ServerOptions options;
  options.worker_threads = 4;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = F2dbClient::Connect(kHost, server.port());
      ASSERT_TRUE(client.ok());
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = client.value().Query(kSumQuery);
        if (result.ok() && result.value().status == StatusCode::kOk) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kQueriesEach);
  EXPECT_GE(engine->stats().queries, static_cast<std::size_t>(ok_count));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_received, static_cast<std::size_t>(ok_count));
  EXPECT_EQ(stats.responses_sent, stats.requests_received);
  EXPECT_EQ(stats.connections_accepted, static_cast<std::size_t>(kClients));
  server.Shutdown();
}

TEST_F(ServerIntegrationTest, StartIsSingleShotAndPortIsEphemeral) {
  auto engine = MakeEngine();
  F2dbServer server(*engine);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.port(), 0);
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
  server.Shutdown();
}

}  // namespace
}  // namespace f2db
