// End-to-end integration: data set -> advisor -> engine -> forecast
// queries + maintenance, mirroring the paper's full pipeline (Figure 6).

#include <gtest/gtest.h>

#include "baselines/advisor_builder.h"
#include "baselines/bottom_up.h"
#include "baselines/direct.h"
#include "baselines/top_down.h"
#include "core/advisor.h"
#include "data/datasets.h"
#include "engine/engine.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

AdvisorOptions FastAdvisorOptions() {
  AdvisorOptions options;
  options.num_threads = 4;
  options.stop.max_iterations = 12;
  options.seed = 123;
  return options;
}

TEST(EndToEnd, AdvisorOnRegionCubeProducesConfiguration) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(4));
  ModelConfigurationAdvisor advisor(graph, factory, FastAdvisorOptions());
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().configuration.num_models(), 1u);
  EXPECT_LT(result.value().final_error, 0.5);
  EXPECT_FALSE(result.value().history.empty());
}

TEST(EndToEnd, AdvisorBeatsOrMatchesTopDownOnSales) {
  auto data = MakeSales();
  ASSERT_TRUE(data.ok());
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(
      ModelSpec::TripleExponentialSmoothing(data.value().season));

  TopDownBuilder top_down;
  auto td = top_down.Build(evaluator, factory);
  ASSERT_TRUE(td.ok()) << td.status().ToString();

  AdvisorBuilder advisor(FastAdvisorOptions());
  auto adv = advisor.Build(evaluator, factory);
  ASSERT_TRUE(adv.ok()) << adv.status().ToString();

  EXPECT_LE(adv.value().configuration.MeanError(),
            td.value().configuration.MeanError() + 1e-9);
}

TEST(EndToEnd, FullPipelineThroughEngine) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  ConfigurationEvaluator evaluator(graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));

  AdvisorBuilder advisor(FastAdvisorOptions());
  auto built = advisor.Build(evaluator, factory);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // Copy the graph into the engine (engine owns its data).
  F2dbEngine engine(testing::MakeFigure2Cube(60));
  ASSERT_TRUE(engine
                  .LoadConfiguration(built.value().configuration, evaluator)
                  .ok());

  // Base-level query (Figure 1, Query 1).
  auto q1 = engine.ExecuteSql(
      "SELECT time, sales FROM facts WHERE city = 'C4' AND product = 'P2' "
      "AS OF now() + '1'");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1.value().rows.size(), 1u);
  EXPECT_GT(q1.value().rows[0].value, 0.0);

  // Aggregate query (Figure 1, Query 2).
  auto q2 = engine.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts WHERE product = 'P2' AND region = "
      "'R2' GROUP BY time AS OF now() + '3'");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2.value().rows.size(), 3u);

  // Maintenance: insert one full period of base facts -> time advances.
  const std::int64_t t = engine.graph().series(engine.graph().top_node())
                             .end_time();
  const std::size_t before = engine.stats().time_advances;
  for (NodeId base : std::vector<NodeId>(engine.graph().base_nodes())) {
    ASSERT_TRUE(engine.InsertFact(base, t, 10.0).ok());
  }
  EXPECT_EQ(engine.stats().time_advances, before + 1);
  EXPECT_EQ(engine.pending_inserts(), 0u);

  // Queries still work after the advance.
  auto q3 = engine.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts AS OF now() + '2'");
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  EXPECT_EQ(q3.value().node, engine.graph().top_node());
}

TEST(EndToEnd, BaselinesProduceComparableConfigurations) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 1.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(4));

  DirectBuilder direct;
  BottomUpBuilder bottom_up;
  TopDownBuilder top_down;
  for (ConfigurationBuilder* builder :
       std::vector<ConfigurationBuilder*>{&direct, &bottom_up, &top_down}) {
    auto outcome = builder->Build(evaluator, factory);
    ASSERT_TRUE(outcome.ok()) << builder->name() << ": "
                              << outcome.status().ToString();
    EXPECT_LT(outcome.value().configuration.MeanError(), 0.6)
        << builder->name();
  }
}

}  // namespace
}  // namespace f2db
