// Fault-injection integration suite: arms every registered failpoint —
// individually and in pairs — against a loaded engine and asserts the
// graceful-degradation contract (DESIGN.md, "Failure semantics and the
// degradation ladder"):
//   - a full query sweep over every aggregation level still returns an
//     answer for every node (no surfaced kInternal),
//   - degraded answers carry a non-kNone DegradationLevel and a reason,
//   - the EngineStats degradation counters equal the annotated row count,
//   - repeated refit failures quarantine a node; the next data advance
//     lifts the quarantine and the node recovers to its primary model.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "common/failpoint.h"
#include "engine/engine.h"
#include "math/optimizer.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions options;
    options.models_per_iteration = 4;
    options.stop.max_iterations = 12;
    AdvisorBuilder builder(options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  void SetUp() override { failpoint::DisableAll(); }
  void TearDown() override { failpoint::DisableAll(); }

  /// A loaded engine; models invalidate after two incremental updates.
  std::unique_ptr<F2dbEngine> MakeEngine(EngineOptions options = {}) {
    if (options.reestimate_after_updates == 0) {
      options.reestimate_after_updates = 2;
    }
    auto engine = std::make_unique<F2dbEngine>(
        testing::MakeFigure2Cube(60, 0.05), options);
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  /// Advances `periods` full periods; inserts may fail when the insert
  /// failpoint is armed, which callers opt into by ignoring the status.
  static void Advance(F2dbEngine& engine, int periods,
                      bool expect_ok = true) {
    const std::vector<NodeId> bases = engine.graph().base_nodes();
    for (int period = 0; period < periods; ++period) {
      const std::int64_t t =
          engine.snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        const Status status =
            engine.InsertFact(bases[i], t, 10.0 + static_cast<double>(i));
        if (expect_ok) ASSERT_TRUE(status.ok()) << status.message();
      }
    }
  }

  /// Queries every node of the cube (all aggregation levels). Asserts that
  /// every node produces an answer and that no error — if any slipped
  /// through — is a kInternal.
  static void SweepAllNodes(const F2dbEngine& engine) {
    for (NodeId node = 0; node < engine.graph().num_nodes(); ++node) {
      auto forecast = engine.ForecastNode(node, 2);
      ASSERT_TRUE(forecast.ok())
          << "node " << node << ": " << forecast.status().message();
      for (double v : forecast.value()) {
        EXPECT_TRUE(std::isfinite(v)) << "node " << node;
      }
    }
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

// ------------------------------------------------ exhaustive site coverage

TEST_F(FaultInjectionTest, EveryRegisteredFailpointIndividually) {
  const std::vector<std::string> sites = failpoint::RegisteredSites();
  ASSERT_GE(sites.size(), 6u);  // optimizer, arima, ets, refit, insert, catalog
  for (const std::string& site : sites) {
    SCOPED_TRACE(site);
    auto engine = MakeEngine();
    Advance(*engine, 3);  // invalidate every model before arming
    failpoint::Enable(site, failpoint::Policy::Always());
    SweepAllNodes(*engine);
    failpoint::DisableAll();
  }
}

TEST_F(FaultInjectionTest, EveryFailpointPairStillAnswersEverywhere) {
  const std::vector<std::string> sites = failpoint::RegisteredSites();
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      SCOPED_TRACE(sites[a] + " + " + sites[b]);
      auto engine = MakeEngine();
      Advance(*engine, 3);
      failpoint::Enable(sites[a], failpoint::Policy::Always());
      failpoint::Enable(sites[b], failpoint::Policy::Always());
      SweepAllNodes(*engine);
      failpoint::DisableAll();
    }
  }
}

// --------------------------------------------------- degradation semantics

TEST_F(FaultInjectionTest, RefitFailureServesStaleModelWithAnnotation) {
  auto engine = MakeEngine();
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());

  auto result = engine->ExecuteSql(
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3'");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().degradation, DegradationLevel::kStaleModel);
  EXPECT_FALSE(result.value().degradation_reason.empty());
  ASSERT_EQ(result.value().rows.size(), 3u);
  for (const ForecastRow& row : result.value().rows) {
    EXPECT_EQ(row.degradation, DegradationLevel::kStaleModel);
  }
  EXPECT_GE(engine->stats().refit_failures, 1u);
  EXPECT_GE(engine->stats().degraded_rows_stale, 3u);
}

TEST_F(FaultInjectionTest, DegradationCountersEqualAnnotatedRowCount) {
  auto engine = MakeEngine();
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());

  std::size_t annotated = 0;
  for (int q = 0; q < 5; ++q) {
    auto result = engine->ExecuteSql(
        "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '4'");
    ASSERT_TRUE(result.ok());
    for (const ForecastRow& row : result.value().rows) {
      if (row.degradation != DegradationLevel::kNone) ++annotated;
    }
  }
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.degraded_rows_stale + stats.degraded_rows_derived +
                stats.degraded_rows_naive,
            annotated);
}

TEST_F(FaultInjectionTest, IntervalQueriesDegradeWithFiniteBounds) {
  auto engine = MakeEngine();
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());

  auto intervals =
      engine->ForecastNodeWithIntervals(engine->graph().top_node(), 3, 0.95);
  ASSERT_TRUE(intervals.ok()) << intervals.status().message();
  for (const ForecastInterval& interval : intervals.value()) {
    EXPECT_TRUE(std::isfinite(interval.lower));
    EXPECT_TRUE(std::isfinite(interval.upper));
    EXPECT_LE(interval.lower, interval.upper);
  }
  EXPECT_GE(engine->stats().degraded_rows_stale, 3u);
}

TEST_F(FaultInjectionTest, OptimizerNonConvergenceDegradesRefits) {
  auto engine = MakeEngine();
  Advance(*engine, 3);
  // The failpoint sits inside NelderMead, so the injected failure reaches
  // the engine as a genuine kUnavailable from the ETS fitter.
  failpoint::Enable(kFailpointOptimizerConverge, failpoint::Policy::Always());

  SweepAllNodes(*engine);
  EXPECT_GE(engine->stats().refit_failures, 1u);
  EXPECT_GT(engine->stats().degraded_rows_stale, 0u);
  EXPECT_EQ(engine->stats().reestimates, 0u);
}

// ------------------------------------------------------- retry / quarantine

TEST_F(FaultInjectionTest, RepeatedRefitFailuresQuarantineTheNode) {
  EngineOptions options;
  options.quarantine_after_refit_failures = 2;
  auto engine = MakeEngine(options);
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());

  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(engine->ForecastNode(engine->graph().top_node(), 1).ok());
  }
  EXPECT_GE(engine->stats().quarantines, 1u);

  // Quarantined entries stop retrying: the failure count freezes.
  const std::size_t failures_at_quarantine = engine->stats().refit_failures;
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(engine->ForecastNode(engine->graph().top_node(), 1).ok());
  }
  EXPECT_EQ(engine->stats().refit_failures, failures_at_quarantine);

  // The published entry carries the quarantine flag.
  bool saw_quarantined = false;
  for (const auto& [node, live] : engine->snapshot()->models) {
    if (live->quarantined) {
      saw_quarantined = true;
      EXPECT_GE(live->refit_failures, 2u);
    }
  }
  EXPECT_TRUE(saw_quarantined);
}

TEST_F(FaultInjectionTest, QuarantineLiftsOnNextDataAdvance) {
  EngineOptions options;
  options.quarantine_after_refit_failures = 1;
  auto engine = MakeEngine(options);
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  for (int q = 0; q < 2; ++q) {
    ASSERT_TRUE(engine->ForecastNode(engine->graph().top_node(), 1).ok());
  }
  ASSERT_GE(engine->stats().quarantines, 1u);

  // Clear the fault and advance one period: the quarantine must lift and
  // the next query must recover to a freshly re-estimated primary model.
  failpoint::DisableAll();
  Advance(*engine, 1);
  for (const auto& [node, live] : engine->snapshot()->models) {
    EXPECT_FALSE(live->quarantined);
    EXPECT_EQ(live->refit_failures, 0u);
  }
  const std::size_t reestimates_before = engine->stats().reestimates;
  auto result = engine->ExecuteSql(
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '2'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().degradation, DegradationLevel::kNone);
  EXPECT_GT(engine->stats().reestimates, reestimates_before);
}

TEST_F(FaultInjectionTest, BackoffSkipsRetryInsideTheWindow) {
  EngineOptions options;
  options.quarantine_after_refit_failures = 0;  // never quarantine
  options.refit_retry_backoff_seconds = 3600.0;  // far beyond test runtime
  auto engine = MakeEngine(options);
  Advance(*engine, 3);
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());

  ASSERT_TRUE(engine->ForecastNode(engine->graph().top_node(), 1).ok());
  const std::size_t after_first = engine->stats().refit_failures;
  EXPECT_GE(after_first, 1u);
  // Every further query lands inside the backoff window: stale answers,
  // no new attempts.
  for (int q = 0; q < 3; ++q) {
    auto result = engine->ExecuteSql(
        "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '1'");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().degradation, DegradationLevel::kStaleModel);
  }
  EXPECT_EQ(engine->stats().refit_failures, after_first);
}

// ------------------------------------------- maintenance / ingestion faults

TEST_F(FaultInjectionTest, InsertFailpointSurfacesUnavailable) {
  auto engine = MakeEngine();
  const NodeId base = engine->graph().base_nodes()[0];
  const std::int64_t t = engine->graph().series(base).end_time();

  failpoint::Enable(kFailpointEngineInsert, failpoint::Policy::Always());
  const Status injected = engine->InsertFact(base, t, 1.0);
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine->pending_inserts(), 0u);

  failpoint::DisableAll();
  EXPECT_TRUE(engine->InsertFact(base, t, 1.0).ok());
}

TEST_F(FaultInjectionTest, CatalogDecodeFailureIsTransactional) {
  auto engine = MakeEngine();
  auto catalog = engine->ExportCatalog();
  ASSERT_TRUE(catalog.ok());
  const std::size_t models_before = engine->num_models();

  failpoint::Enable(kFailpointCatalogDecode, failpoint::Policy::Always());
  const Status load = engine->LoadCatalog(catalog.value());
  EXPECT_EQ(load.code(), StatusCode::kUnavailable);
  // The previous state stayed published: same models, queries still answer.
  EXPECT_EQ(engine->num_models(), models_before);
  SweepAllNodes(*engine);

  failpoint::DisableAll();
  EXPECT_TRUE(engine->LoadCatalog(catalog.value()).ok());
}

TEST_F(FaultInjectionTest, NonFiniteInsertsAreRejected) {
  auto engine = MakeEngine();
  const NodeId base = engine->graph().base_nodes()[0];
  const std::int64_t t = engine->graph().series(base).end_time();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  EXPECT_EQ(engine->InsertFact(base, t, kNan).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->InsertFact(base, t, -kInf).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->pending_inserts(), 0u);
  EXPECT_TRUE(engine->InsertFact(base, t, 1.0).ok());
}

// ----------------------------------------------- concurrency under faults

TEST_F(FaultInjectionTest, ConcurrentQueriesSurviveProbabilisticRefitFaults) {
  EngineOptions options;
  options.reestimate_after_updates = 2;
  options.quarantine_after_refit_failures = 3;
  auto engine = MakeEngine(options);
  // Half of all refit attempts fail, deterministically seeded; readers race
  // with the writer and with each other's refit/failure publications.
  failpoint::Enable(kFailpointEngineRefit,
                    failpoint::Policy::WithProbability(0.5, /*seed=*/7));

  const std::vector<NodeId> bases = engine->graph().base_nodes();
  const std::size_t num_nodes = engine->graph().num_nodes();
  std::atomic<int> bad_status{0};

  std::thread writer([&] {
    for (int period = 0; period < 12; ++period) {
      const std::int64_t t =
          engine->snapshot()->graph->series(bases[0]).end_time();
      for (std::size_t i = 0; i < bases.size(); ++i) {
        if (!engine->InsertFact(bases[i], t, 10.0 + static_cast<double>(i))
                 .ok()) {
          ++bad_status;
        }
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 80; ++i) {
        const NodeId node = static_cast<NodeId>((r * 31 + i) % num_nodes);
        auto forecast = engine->ForecastNode(node, 2);
        if (!forecast.ok()) ++bad_status;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(bad_status.load(), 0);
  // The injected failures were recorded through the copy-on-write path.
  EXPECT_GT(failpoint::Triggers(kFailpointEngineRefit), 0u);
}

}  // namespace
}  // namespace f2db
