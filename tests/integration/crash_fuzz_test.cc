// Crash-recovery fuzzing: SIGKILL a durable engine child at seeded random
// points mid-workload, recover in the parent, and require differential
// agreement with the ReferenceOracle (see src/testing/crash.h).
//
// Replay a reported failure with
//   F2DB_PROPERTY_SEED=<seed> ctest -R CrashFuzz --output-on-failure
// (the failing iteration's data directory is kept on disk).

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

#include "testing/crash.h"
#include "testing/property.h"

namespace f2db::testing {
namespace {

/// Per-kill-point coverage accumulator for the compaction leg: counts how
/// often each storage crash hook actually killed an iteration.
struct CompactionCoverage {
  std::size_t attempted = 0;
  std::size_t completed = 0;  // attempted with no kill point armed
  std::size_t segment_written = 0;
  std::size_t before_rename = 0;
  std::size_t after_rename = 0;
  std::size_t before_wal_delete = 0;

  void Record(const CrashFuzzReport& report) {
    if (!report.compaction_attempted) return;
    ++attempted;
    const std::string& point = report.compaction_crash_point;
    if (point.empty()) ++completed;
    if (point == "segment_written") ++segment_written;
    if (point == "before_manifest_rename") ++before_rename;
    if (point == "after_manifest_rename") ++after_rename;
    if (point == "before_wal_delete") ++before_wal_delete;
  }

  /// Every stage of the compaction protocol must have been hit at least
  /// once, including the completed-cleanly case.
  void ExpectFullCoverage() const {
    EXPECT_GT(completed, 0u);
    EXPECT_GT(segment_written, 0u);
    EXPECT_GT(before_rename, 0u);
    EXPECT_GT(after_rename, 0u);
    EXPECT_GT(before_wal_delete, 0u);
  }
};

class CrashFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/f2db_crash_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { RemoveDirectoryTree(dir_); }

  std::string dir_;
};

TEST_F(CrashFuzzTest, SeededKillPointsRecoverWithDifferentialAgreement) {
  const std::uint64_t base = PropertySeed();
  // 200 distinct kill points by default; F2DB_PROPERTY_ITERATIONS scales
  // the budget up for nightly runs.
  const std::size_t iterations = PropertyIterations(200);

  std::size_t torn = 0;
  std::size_t checkpoints = 0;
  std::size_t replayed = 0;
  CompactionCoverage compactions;
  for (std::size_t i = 0; i < iterations; ++i) {
    CrashFuzzOptions options;
    options.seed = SubSeed(base, "crash-" + std::to_string(i));
    options.data_dir = dir_ + "/iter";
    const CrashFuzzReport report = RunCrashFuzz(options);
    ASSERT_TRUE(report.ok) << report.failure << "\n"
                           << ReplayHint(base) << " (iteration " << i << ")";
    EXPECT_TRUE(report.killed_by_sigkill);
    torn += report.torn_tail_injected ? 1 : 0;
    checkpoints += report.checkpoint_taken ? 1 : 0;
    replayed += report.records_replayed;
    compactions.Record(report);
  }

  // Coverage sanity: across 200 seeds the plan must have exercised every
  // recovery mode, not just the easy clean-tail path — including a SIGKILL
  // inside every stage of the compaction protocol.
  EXPECT_GE(torn, iterations / 20);
  EXPECT_GE(checkpoints, iterations / 20);
  EXPECT_GE(compactions.attempted, iterations / 4);
  compactions.ExpectFullCoverage();
  EXPECT_GT(replayed, 0u);
}

TEST_F(CrashFuzzTest, MultiShardKillPointsRecoverEveryShard) {
  // The sharded configuration: per-shard WAL directories, parallel
  // recovery, and the torn tail landing on exactly one shard while its
  // siblings replay intact (see crash.h).
  const std::uint64_t base = PropertySeed();
  const std::size_t iterations = PropertyIterations(60);
  const std::size_t shard_counts[] = {2, 3, 5};

  std::size_t torn = 0;
  std::size_t checkpoints = 0;
  CompactionCoverage compactions;
  for (std::size_t i = 0; i < iterations; ++i) {
    CrashFuzzOptions options;
    options.seed = SubSeed(base, "crash-sharded-" + std::to_string(i));
    options.data_dir = dir_ + "/iter";
    options.num_shards = shard_counts[i % 3];
    const CrashFuzzReport report = RunCrashFuzz(options);
    ASSERT_TRUE(report.ok) << report.failure << "\n"
                           << ReplayHint(base) << " (iteration " << i
                           << ", shards " << options.num_shards << ")";
    EXPECT_TRUE(report.killed_by_sigkill);
    torn += report.torn_tail_injected ? 1 : 0;
    checkpoints += report.checkpoint_taken ? 1 : 0;
    compactions.Record(report);
  }
  EXPECT_GE(torn, iterations / 20);
  EXPECT_GE(checkpoints, iterations / 20);
  // The sharded fan-out compacts shard by shard, so an armed kill point
  // leaves sibling shards at earlier protocol stages; require the plan to
  // have exercised compaction here too (60 iterations: every kill point
  // lands with probability ~1/10 each, so demand attempts, not all five).
  EXPECT_GE(compactions.attempted, iterations / 5);
  EXPECT_GT(compactions.segment_written + compactions.before_rename +
                compactions.after_rename + compactions.before_wal_delete,
            0u);
}

TEST_F(CrashFuzzTest, IterationsAreDeterministic) {
  CrashFuzzOptions options;
  options.seed = SubSeed(PropertySeed(), "crash-determinism");
  options.data_dir = dir_ + "/iter";
  const CrashFuzzReport first = RunCrashFuzz(options);
  const CrashFuzzReport second = RunCrashFuzz(options);
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_EQ(first.attempts_total, second.attempts_total);
  EXPECT_EQ(first.attempts_executed, second.attempts_executed);
  EXPECT_EQ(first.inserts_accepted, second.inserts_accepted);
  EXPECT_EQ(first.checkpoint_taken, second.checkpoint_taken);
  EXPECT_EQ(first.torn_tail_injected, second.torn_tail_injected);
  EXPECT_EQ(first.compaction_attempted, second.compaction_attempted);
  EXPECT_EQ(first.compaction_crash_point, second.compaction_crash_point);
  EXPECT_EQ(first.records_replayed, second.records_replayed);
}

}  // namespace
}  // namespace f2db::testing
