// Overload chaos: one hostile client floods the server and never reads a
// byte of its responses while well-behaved clients keep querying. The
// contract: the victim is evicted by backpressure, every well-behaved
// request is answered correctly, tail latency stays within a bounded
// multiple of the calm baseline, memory does not balloon with the
// victim's unread responses, and the server is fully responsive after.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

constexpr char kHost[] = "127.0.0.1";
constexpr char kSumQuery[] =
    "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3'";
constexpr int kWellBehavedClients = 3;
constexpr int kQueriesPerClient = 25;

/// VmRSS of this process in bytes (0 when /proc is unavailable).
std::size_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

class OverloadChaosTest : public ::testing::Test {
 protected:
  OverloadChaosTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {
    AdvisorOptions advisor_options;
    advisor_options.models_per_iteration = 4;
    advisor_options.stop.max_iterations = 12;
    AdvisorBuilder builder(advisor_options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
  }

  std::unique_ptr<F2dbEngine> MakeEngine() {
    auto engine =
        std::make_unique<F2dbEngine>(testing::MakeFigure2Cube(60, 0.05));
    EXPECT_TRUE(engine->LoadConfiguration(config_, evaluator_).ok());
    return engine;
  }

  static int ConnectNonReading(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int rcvbuf = 512;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  /// Runs `kWellBehavedClients` concurrent query streams; returns each
  /// request's wall time in seconds. All requests must be answered kOk —
  /// failures surface through `ok_count`.
  std::vector<double> RunWellBehaved(std::uint16_t port, int* ok_count) {
    std::vector<double> latencies(
        static_cast<std::size_t>(kWellBehavedClients * kQueriesPerClient),
        0.0);
    std::vector<std::thread> threads;
    std::atomic<int> oks{0};
    for (int c = 0; c < kWellBehavedClients; ++c) {
      threads.emplace_back([&, c] {
        ClientOptions options;
        options.request_timeout_seconds = 30.0;
        auto client = F2dbClient::Connect(kHost, port, options);
        ASSERT_TRUE(client.ok()) << client.status().message();
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto start = std::chrono::steady_clock::now();
          auto result = client.value().Query(kSumQuery);
          const auto elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
          latencies[static_cast<std::size_t>(c * kQueriesPerClient + q)] =
              elapsed;
          if (result.ok() && result.value().status == StatusCode::kOk) {
            oks.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    *ok_count = oks.load();
    return latencies;
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  ModelConfiguration config_;
};

TEST_F(OverloadChaosTest, FloodingNonReaderIsEvictedWhileOthersAreServed) {
  auto engine = MakeEngine();
  ServerOptions options;
  options.worker_threads = 2;
  // Above the flood's 300 frames plus the well-behaved mix: admission
  // control is tenant-blind, so the limit must clear the whole burst or
  // innocents get shed along with it.
  options.admission_queue_limit = 1024;
  options.outbound_high_watermark_bytes = 16 * 1024;
  options.outbound_hard_cap_bytes = 128 * 1024;
  options.slow_client_grace_seconds = 0.5;
  F2dbServer server(*engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Calm baseline: the same client mix with no attacker.
  int baseline_oks = 0;
  const std::vector<double> baseline_latencies =
      RunWellBehaved(server.port(), &baseline_oks);
  ASSERT_EQ(baseline_oks, kWellBehavedClients * kQueriesPerClient);
  const double baseline_p99 = Percentile(baseline_latencies, 0.99);
  const std::size_t rss_before = CurrentRssBytes();

  // Chaos: a non-reading client floods STATS requests (multi-kilobyte
  // responses it will never drain) while the well-behaved mix re-runs.
  const int flood_fd = ConnectNonReading(server.port());
  ASSERT_GE(flood_fd, 0);
  WireRequest stats;
  stats.type = FrameType::kStats;
  const std::string frame = EncodeRequest(stats);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(::send(flood_fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
  }

  int chaos_oks = 0;
  const std::vector<double> chaos_latencies =
      RunWellBehaved(server.port(), &chaos_oks);

  // Every well-behaved request was answered correctly despite the flood.
  EXPECT_EQ(chaos_oks, kWellBehavedClients * kQueriesPerClient);

  // Tail latency stays within 2x of the calm baseline (with an absolute
  // floor so scheduler noise on loaded CI machines cannot flake the 2x on
  // a sub-millisecond baseline).
  const double chaos_p99 = Percentile(chaos_latencies, 0.99);
  EXPECT_LE(chaos_p99, std::max(2.0 * baseline_p99, 1.0))
      << "baseline p99 " << baseline_p99 << "s";

  // The victim was evicted — by the hard byte ceiling or the slow-client
  // grace timer — instead of parking its unread bytes in server memory.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         server.stats().connections_evicted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().connections_evicted, 1u);

  // Memory stayed bounded: the attacker's undrained responses are capped
  // by the 128 KiB ceiling, not proportional to its 300 requests.
  const std::size_t rss_after = CurrentRssBytes();
  if (rss_before > 0 && rss_after > rss_before) {
    EXPECT_LT(rss_after - rss_before, 256u * 1024 * 1024);
  }

  // The server is fully responsive afterwards.
  auto client = F2dbClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  auto pong = client.value().Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().body, "PONG");
  auto result = client.value().Query(kSumQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, StatusCode::kOk);

  ::close(flood_fd);
  server.Shutdown();
}

}  // namespace
}  // namespace f2db
