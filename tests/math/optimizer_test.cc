#include "math/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <tuple>

namespace f2db {
namespace {

double Sphere(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double Rosenbrock(const std::vector<double>& x) {
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    sum += 100.0 * std::pow(x[i + 1] - x[i] * x[i], 2) +
           std::pow(1.0 - x[i], 2);
  }
  return sum;
}

Bounds UnitBox(std::size_t d, double lo = -5.0, double hi = 5.0) {
  Bounds b;
  b.lower.assign(d, lo);
  b.upper.assign(d, hi);
  return b;
}

TEST(NelderMead, MinimizesSphere) {
  const auto result = NelderMead(Sphere, {2.0, -3.0, 1.0});
  EXPECT_LT(result.value, 1e-6);
  for (double v : result.x) EXPECT_NEAR(v, 0.0, 1e-2);
}

TEST(NelderMead, MinimizesRosenbrock2d) {
  OptimizerOptions options;
  options.max_evaluations = 10000;
  options.tolerance = 1e-12;
  const auto result = NelderMead(Rosenbrock, {-1.2, 1.0}, {}, options);
  EXPECT_LT(result.value, 1e-4);
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], 1.0, 0.05);
}

TEST(NelderMead, RespectsBounds) {
  // Unconstrained minimum at 3; box caps at 1.
  Objective objective = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  Bounds b;
  b.lower = {-1.0};
  b.upper = {1.0};
  const auto result = NelderMead(objective, {0.0}, b);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
}

TEST(NelderMead, ZeroDimensional) {
  const auto result = NelderMead(Sphere, {});
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(NelderMead, NonFiniteObjectiveTreatedAsWorst) {
  Objective objective = [](const std::vector<double>& x) {
    if (x[0] < 0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  const auto result = NelderMead(objective, {0.5});
  EXPECT_NEAR(result.x[0], 1.0, 0.1);
  EXPECT_TRUE(std::isfinite(result.value));
}

TEST(HillClimb, MinimizesSphereWithinBounds) {
  const auto result = HillClimb(Sphere, {3.0, -2.0}, UnitBox(2));
  EXPECT_LT(result.value, 1e-6);
}

TEST(HillClimb, ConvergesFlagSet) {
  OptimizerOptions options;
  options.max_evaluations = 100000;
  const auto result = HillClimb(Sphere, {0.5}, UnitBox(1), options);
  EXPECT_TRUE(result.converged);
}

TEST(SimulatedAnnealing, FindsGlobalBasinOfMultimodal) {
  // f(x) = x^4 - 3x^2 + x has a global minimum near x = -1.3.
  Objective objective = [](const std::vector<double>& x) {
    const double v = x[0];
    return v * v * v * v - 3.0 * v * v + v;
  };
  Rng rng(99);
  AnnealingOptions options;
  options.base.max_evaluations = 5000;
  const auto result =
      SimulatedAnnealing(objective, {1.2}, UnitBox(1, -2.0, 2.0), rng, options);
  EXPECT_NEAR(result.x[0], -1.3, 0.2);
}

TEST(GridSearch, FindsGridOptimum) {
  Objective objective = [](const std::vector<double>& x) {
    return std::abs(x[0] - 0.5) + std::abs(x[1] + 0.25);
  };
  Bounds b;
  b.lower = {-1.0, -1.0};
  b.upper = {1.0, 1.0};
  const auto result = GridSearch(objective, b, 9);  // grid step 0.25
  EXPECT_NEAR(result.x[0], 0.5, 1e-12);
  EXPECT_NEAR(result.x[1], -0.25, 1e-12);
  EXPECT_EQ(result.evaluations, 81u);
}

TEST(Bounds, ClampIsNoopWhenUnconstrained) {
  Bounds b;
  std::vector<double> x{100.0};
  b.Clamp(x);
  EXPECT_DOUBLE_EQ(x[0], 100.0);
}

// Property sweep: every optimizer drives the sphere below the value at the
// start point, across dimensions.
class OptimizerProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptimizerProperty, ImprovesOnStartingPoint) {
  const int which = std::get<0>(GetParam());
  const int dim = std::get<1>(GetParam());
  std::vector<double> x0(static_cast<std::size_t>(dim), 2.0);
  const Bounds bounds = UnitBox(static_cast<std::size_t>(dim));
  const double f0 = Sphere(x0);

  OptimizationResult result;
  switch (which) {
    case 0:
      result = NelderMead(Sphere, x0, bounds);
      break;
    case 1:
      result = HillClimb(Sphere, x0, bounds);
      break;
    case 2: {
      Rng rng(7);
      result = SimulatedAnnealing(Sphere, x0, bounds, rng);
      break;
    }
  }
  EXPECT_LT(result.value, f0);
  EXPECT_GT(result.evaluations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizersAllDims, OptimizerProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace f2db
