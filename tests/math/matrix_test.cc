#include "math/matrix.h"

#include <gtest/gtest.h>

namespace f2db {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, Transposed) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, Multiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentityIsIdentityOp) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix c = a.Multiply(Matrix::Identity(2));
  EXPECT_NEAR(c.Distance(a), 0.0, 1e-12);
}

TEST(Matrix, MultiplyVector) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> v = a.MultiplyVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, Distance) {
  const Matrix a = Matrix::FromRows({{0, 0}, {0, 0}});
  const Matrix b = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.Distance(b), 5.0);
}

TEST(Matrix, ToStringShowsRows) {
  const Matrix a = Matrix::FromRows({{1, 2}});
  EXPECT_NE(a.ToString().find("1"), std::string::npos);
  EXPECT_NE(a.ToString().find("2"), std::string::npos);
}

}  // namespace
}  // namespace f2db
