#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace f2db {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(Stats, VarianceBasic) {
  EXPECT_DOUBLE_EQ(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(Stats, SampleVarianceUsesNMinusOne) {
  // Population variance 4 over 8 values -> sample variance 4 * 8/7.
  EXPECT_NEAR(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0 * 8.0 / 7.0,
              1e-12);
}

TEST(Stats, StdDevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(Stats, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({10, 10, 10}), 0.0);
  EXPECT_NEAR(CoefficientOfVariation({2, 4, 4, 4, 5, 5, 7, 9}), 2.0 / 5.0,
              1e-12);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({0, 0, 0}), 0.0);  // mean ~ 0
}

TEST(Stats, CovarianceAndCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_GT(Covariance(x, y), 0.0);
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> y_neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  Rng rng(3);
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.NextGaussian();
  const auto acf = Autocorrelation(xs, 5);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  for (std::size_t lag = 1; lag <= 5; ++lag) {
    EXPECT_LT(std::abs(acf[lag]), 0.2) << "white noise should decorrelate";
  }
}

TEST(Stats, AutocorrelationDetectsPeriodicity) {
  std::vector<double> xs(120);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 12.0);
  }
  const auto acf = Autocorrelation(xs, 12);
  EXPECT_GT(acf[12], 0.8);
  EXPECT_LT(acf[6], -0.8);
}

TEST(Stats, PacfOfAr1MatchesPhi) {
  // AR(1) with phi = 0.7: PACF lag 1 ~ 0.7, higher lags ~ 0.
  Rng rng(5);
  std::vector<double> xs(4000);
  double prev = 0.0;
  for (double& x : xs) {
    prev = 0.7 * prev + rng.NextGaussian();
    x = prev;
  }
  const auto pacf = PartialAutocorrelation(xs, 4);
  EXPECT_NEAR(pacf[0], 0.7, 0.06);
  for (std::size_t lag = 2; lag <= 4; ++lag) {
    EXPECT_LT(std::abs(pacf[lag - 1]), 0.1);
  }
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
}

TEST(Stats, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.9999), 3.719016, 1e-3);
  EXPECT_NEAR(InverseNormalCdf(0.0001), -3.719016, 1e-3);
}

TEST(Stats, InverseNormalCdfMonotonic) {
  double prev = InverseNormalCdf(0.01);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double v = InverseNormalCdf(p);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace f2db
