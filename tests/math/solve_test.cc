#include "math/solve.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace f2db {
namespace {

Matrix RandomSpd(std::size_t n, Rng& rng) {
  // A = B^T B + n*I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.Gaussian(0, 1);
  }
  Matrix a = b.Transposed().Multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskySolve, SolvesKnownSystem) {
  const Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto x = CholeskySolve(a, {10, 8});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  const auto ax = a.MultiplyVector(x.value());
  EXPECT_NEAR(ax[0], 10.0, 1e-10);
  EXPECT_NEAR(ax[1], 8.0, 1e-10);
}

TEST(CholeskySolve, RandomSpdResidualSmall) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 20;
    const Matrix a = RandomSpd(n, rng);
    std::vector<double> b(n);
    for (double& v : b) v = rng.Gaussian(0, 1);
    auto x = CholeskySolve(a, b);
    ASSERT_TRUE(x.ok());
    const auto ax = a.MultiplyVector(x.value());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(CholeskySolve, RejectsNonSpd) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // indefinite
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskySolve, RejectsSizeMismatch) {
  const Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskyFactorization, ReusableAcrossRhs) {
  Rng rng(23);
  const Matrix a = RandomSpd(10, rng);
  auto factor = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(factor.ok());
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> b(10);
    for (double& v : b) v = rng.Gaussian(0, 1);
    const auto x = factor.value().Solve(b);
    const auto ax = a.MultiplyVector(x);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(LeastSquares, ExactSystem) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  // b generated from x = (2, 3): residual zero.
  auto x = LeastSquares(a, {2, 3, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedRegression) {
  // Fit y = 2x + 1 with noiseless data.
  std::vector<std::vector<double>> rows;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({static_cast<double>(i), 1.0});
    b.push_back(2.0 * i + 1.0);
  }
  auto x = LeastSquares(Matrix::FromRows(rows), b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-9);
}

TEST(LeastSquares, MatchesNormalEquations) {
  Rng rng(31);
  Matrix a(30, 4);
  std::vector<double> b(30);
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.Gaussian(0, 1);
    b[r] = rng.Gaussian(0, 1);
  }
  auto qr = LeastSquares(a, b);
  ASSERT_TRUE(qr.ok());
  // Normal equations solution for cross-validation.
  const Matrix at = a.Transposed();
  const Matrix ata = at.Multiply(a);
  auto ne = CholeskySolve(ata, at.MultiplyVector(b));
  ASSERT_TRUE(ne.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(qr.value()[i], ne.value()[i], 1e-8);
  }
}

TEST(LeastSquares, RejectsUnderdetermined) {
  EXPECT_FALSE(LeastSquares(Matrix(2, 3), {1, 2}).ok());
}

TEST(LeastSquares, RejectsRankDeficient) {
  const Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_FALSE(LeastSquares(a, {1, 2, 3}).ok());
}

TEST(GaussianSolve, SolvesGeneralSquareSystem) {
  const Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  auto x = GaussianSolve(a, {-8, 0, 3});
  ASSERT_TRUE(x.ok());
  const auto ax = a.MultiplyVector(x.value());
  EXPECT_NEAR(ax[0], -8.0, 1e-10);
  EXPECT_NEAR(ax[1], 0.0, 1e-10);
  EXPECT_NEAR(ax[2], 3.0, 1e-10);
}

TEST(GaussianSolve, RejectsSingular) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(GaussianSolve(a, {1, 2}).ok());
}

}  // namespace
}  // namespace f2db
