#include "cube/hierarchy.h"

#include <gtest/gtest.h>

namespace f2db {
namespace {

Hierarchy MakeLocation() {
  Hierarchy h("location");
  EXPECT_TRUE(h.AddLevel("city", {"C1", "C2", "C3", "C4"}).ok());
  EXPECT_TRUE(h.AddLevel("region", {"R1", "R2"}).ok());
  EXPECT_TRUE(h.SetParent(0, 0, 0).ok());
  EXPECT_TRUE(h.SetParent(0, 1, 0).ok());
  EXPECT_TRUE(h.SetParent(0, 2, 1).ok());
  EXPECT_TRUE(h.SetParent(0, 3, 1).ok());
  EXPECT_TRUE(h.Finalize().ok());
  return h;
}

TEST(Hierarchy, LevelAndValueCounts) {
  const Hierarchy h = MakeLocation();
  EXPECT_EQ(h.num_levels(), 2u);
  EXPECT_EQ(h.num_values(0), 4u);
  EXPECT_EQ(h.num_values(1), 2u);
  EXPECT_EQ(h.num_values(2), 1u);  // ALL
}

TEST(Hierarchy, Names) {
  const Hierarchy h = MakeLocation();
  EXPECT_EQ(h.level_name(0), "city");
  EXPECT_EQ(h.level_name(2), "ALL");
  EXPECT_EQ(h.value_name(0, 2), "C3");
  EXPECT_EQ(h.value_name(2, 0), "*");
}

TEST(Hierarchy, ParentsEncodeFunctionalDependency) {
  const Hierarchy h = MakeLocation();
  EXPECT_EQ(h.parent_value(0, 0), 0u);  // C1 -> R1
  EXPECT_EQ(h.parent_value(0, 3), 1u);  // C4 -> R2
  EXPECT_EQ(h.parent_value(1, 1), 0u);  // R2 -> ALL
}

TEST(Hierarchy, ChildValues) {
  const Hierarchy h = MakeLocation();
  EXPECT_EQ(h.child_values(1, 0), (std::vector<ValueIndex>{0, 1}));
  EXPECT_EQ(h.child_values(1, 1), (std::vector<ValueIndex>{2, 3}));
  EXPECT_EQ(h.child_values(2, 0), (std::vector<ValueIndex>{0, 1}));  // ALL
}

TEST(Hierarchy, FindLevelAndValue) {
  const Hierarchy h = MakeLocation();
  EXPECT_EQ(h.FindLevel("region").value(), 1u);
  EXPECT_EQ(h.FindLevel("ALL").value(), 2u);
  EXPECT_FALSE(h.FindLevel("country").ok());
  EXPECT_EQ(h.FindValue(0, "C2").value(), 1u);
  EXPECT_EQ(h.FindValue(2, "*").value(), 0u);
  EXPECT_FALSE(h.FindValue(0, "C9").ok());
  EXPECT_FALSE(h.FindValue(2, "C9").ok());
}

TEST(Hierarchy, FlatFactory) {
  const Hierarchy h = Hierarchy::Flat("product", {"P1", "P2"});
  EXPECT_TRUE(h.finalized());
  EXPECT_EQ(h.num_levels(), 1u);
  EXPECT_EQ(h.child_values(1, 0).size(), 2u);
  EXPECT_EQ(h.parent_value(0, 1), 0u);  // directly under ALL
}

TEST(Hierarchy, RejectsEmptyLevel) {
  Hierarchy h("x");
  EXPECT_FALSE(h.AddLevel("lvl", {}).ok());
}

TEST(Hierarchy, RejectsFinalizeWithoutLevels) {
  Hierarchy h("x");
  EXPECT_FALSE(h.Finalize().ok());
}

TEST(Hierarchy, SetParentValidatesRanges) {
  Hierarchy h("x");
  ASSERT_TRUE(h.AddLevel("a", {"a1", "a2"}).ok());
  ASSERT_TRUE(h.AddLevel("b", {"b1"}).ok());
  EXPECT_FALSE(h.SetParent(1, 0, 0).ok());  // topmost level has no parent level
  EXPECT_FALSE(h.SetParent(0, 5, 0).ok());  // child out of range
  EXPECT_FALSE(h.SetParent(0, 0, 5).ok());  // parent out of range
}

TEST(Hierarchy, FinalizeRejectsChildlessParent) {
  Hierarchy h("x");
  ASSERT_TRUE(h.AddLevel("a", {"a1", "a2"}).ok());
  ASSERT_TRUE(h.AddLevel("b", {"b1", "b2"}).ok());
  // Both children map to b1; b2 ends up childless.
  ASSERT_TRUE(h.SetParent(0, 0, 0).ok());
  ASSERT_TRUE(h.SetParent(0, 1, 0).ok());
  EXPECT_FALSE(h.Finalize().ok());
}

TEST(Hierarchy, MutationAfterFinalizeRejected) {
  Hierarchy h = MakeLocation();
  EXPECT_FALSE(h.AddLevel("country", {"X"}).ok());
  EXPECT_FALSE(h.SetParent(0, 0, 1).ok());
}

TEST(Hierarchy, ThreeLevelChain) {
  Hierarchy h("geo");
  ASSERT_TRUE(h.AddLevel("city", {"c1", "c2", "c3", "c4"}).ok());
  ASSERT_TRUE(h.AddLevel("state", {"s1", "s2"}).ok());
  ASSERT_TRUE(h.AddLevel("country", {"x"}).ok());
  for (ValueIndex v = 0; v < 4; ++v) {
    ASSERT_TRUE(h.SetParent(0, v, v / 2).ok());
  }
  ASSERT_TRUE(h.SetParent(1, 0, 0).ok());
  ASSERT_TRUE(h.SetParent(1, 1, 0).ok());
  ASSERT_TRUE(h.Finalize().ok());
  EXPECT_EQ(h.num_levels(), 3u);
  EXPECT_EQ(h.child_values(2, 0).size(), 2u);
  EXPECT_EQ(h.child_values(3, 0).size(), 1u);  // ALL covers one country
}

}  // namespace
}  // namespace f2db
