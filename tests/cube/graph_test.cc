#include "cube/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_cubes.h"

namespace f2db {
namespace {

TEST(CubeSchema, AddAndFind) {
  CubeSchema schema;
  ASSERT_TRUE(schema.AddHierarchy(Hierarchy::Flat("a", {"x", "y"})).ok());
  ASSERT_TRUE(schema.AddHierarchy(Hierarchy::Flat("b", {"p"})).ok());
  EXPECT_EQ(schema.num_dimensions(), 2u);
  EXPECT_EQ(schema.FindDimension("b").value(), 1u);
  EXPECT_FALSE(schema.FindDimension("c").ok());
  EXPECT_EQ(schema.NumBaseCells(), 2u);
}

TEST(CubeSchema, RejectsDuplicateAndUnfinalized) {
  CubeSchema schema;
  ASSERT_TRUE(schema.AddHierarchy(Hierarchy::Flat("a", {"x"})).ok());
  EXPECT_FALSE(schema.AddHierarchy(Hierarchy::Flat("a", {"y"})).ok());
  Hierarchy unfinalized("u");
  ASSERT_TRUE(unfinalized.AddLevel("l", {"v"}).ok());
  EXPECT_FALSE(schema.AddHierarchy(std::move(unfinalized)).ok());
}

TEST(CubeSchema, FindLevelAnywhere) {
  CubeSchema schema;
  ASSERT_TRUE(schema.AddHierarchy(Hierarchy::Flat("prod", {"p1"})).ok());
  ASSERT_TRUE(schema.AddHierarchy(Hierarchy::Flat("city", {"c1"})).ok());
  auto hit = schema.FindLevelAnywhere("city");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().first, 1u);
  EXPECT_EQ(hit.value().second, 0u);
  EXPECT_FALSE(schema.FindLevelAnywhere("nope").ok());
}

TEST(Graph, NodeCountMatchesSlotProduct) {
  // Figure 2 cube: location slots = 4 cities + 2 regions + ALL = 7;
  // product slots = 2 + ALL = 3; total 21 nodes, 8 base.
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  EXPECT_EQ(graph.num_nodes(), 21u);
  EXPECT_EQ(graph.num_base_nodes(), 8u);
}

TEST(Graph, AddressRoundTrip) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const NodeAddress address = graph.AddressOf(node);
    const auto back = graph.NodeFor(address);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), node);
  }
}

TEST(Graph, NodeForValidatesRanges) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  NodeAddress bad;
  bad.coords = {{9, 0}, {0, 0}};
  EXPECT_FALSE(graph.NodeFor(bad).ok());
  bad.coords = {{0, 99}, {0, 0}};
  EXPECT_FALSE(graph.NodeFor(bad).ok());
  bad.coords = {{0, 0}};
  EXPECT_FALSE(graph.NodeFor(bad).ok());  // wrong dimensionality
}

TEST(Graph, TopNodeIsAllEverywhere) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const NodeAddress top = graph.AddressOf(graph.top_node());
  EXPECT_EQ(top.coords[0].level, 2u);  // ALL of location
  EXPECT_EQ(top.coords[1].level, 1u);  // ALL of product
  EXPECT_FALSE(graph.IsBaseNode(graph.top_node()));
}

TEST(Graph, BaseNodesAreLevelZero) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  for (NodeId node : graph.base_nodes()) {
    EXPECT_TRUE(graph.IsBaseNode(node));
    EXPECT_EQ(graph.LevelSum(node), 0u);
  }
}

TEST(Graph, ChildrenRespectFunctionalDependency) {
  // Children of (region=R2, product=P2) along location are exactly
  // (C3, P2) and (C4, P2) — C1/C2 belong to R1 (paper property 3).
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  NodeAddress address;
  address.coords = {{1, 1}, {0, 1}};  // R2, P2
  const NodeId node = graph.NodeFor(address).value();
  const auto children = graph.Children(node, 0);
  ASSERT_EQ(children.size(), 2u);
  for (NodeId child : children) {
    const NodeAddress ca = graph.AddressOf(child);
    EXPECT_EQ(ca.coords[0].level, 0u);
    EXPECT_GE(ca.coords[0].value, 2u);  // C3 or C4
    EXPECT_EQ(ca.coords[1].value, 1u);  // product preserved
  }
}

TEST(Graph, ParentRoundTrip) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const NodeId base = graph.base_nodes()[0];
  const auto parent = graph.Parent(base, 0);
  ASSERT_TRUE(parent.ok());
  const auto children = graph.Children(parent.value(), 0);
  EXPECT_NE(std::find(children.begin(), children.end(), base), children.end());
}

TEST(Graph, ParentOfAllFails) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  EXPECT_FALSE(graph.Parent(graph.top_node(), 0).ok());
  EXPECT_FALSE(graph.Parent(graph.top_node(), 1).ok());
}

TEST(Graph, ANodeContributesToMultipleAggregates) {
  // Paper property 2: C1R1P2 can aggregate to C1*P2-style nodes along
  // either dimension.
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  NodeAddress address;
  address.coords = {{0, 0}, {0, 1}};  // C1, P2
  const NodeId node = graph.NodeFor(address).value();
  const auto p0 = graph.Parent(node, 0);
  const auto p1 = graph.Parent(node, 1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_NE(p0.value(), p1.value());
}

TEST(Graph, ChildSetsCoverAllAggregatedDimensions) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const auto sets = graph.ChildSets(graph.top_node());
  EXPECT_EQ(sets.size(), 2u);
  const NodeId base = graph.base_nodes()[0];
  EXPECT_TRUE(graph.ChildSets(base).empty());
}

TEST(Graph, AggregationIsExactSum) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  // Every non-base node equals the sum of its children along any dimension.
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    for (const auto& [dim, children] : graph.ChildSets(node)) {
      for (std::size_t t = 0; t < graph.series_length(); ++t) {
        double sum = 0.0;
        for (NodeId child : children) sum += graph.series(child)[t];
        EXPECT_NEAR(graph.series(node)[t], sum, 1e-9)
            << graph.NodeName(node) << " dim " << dim << " t=" << t;
      }
    }
  }
}

TEST(Graph, TopEqualsSumOfAllBase) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  for (std::size_t t = 0; t < graph.series_length(); ++t) {
    double sum = 0.0;
    for (NodeId base : graph.base_nodes()) sum += graph.series(base)[t];
    EXPECT_NEAR(graph.series(graph.top_node())[t], sum, 1e-9);
  }
}

TEST(Graph, DistanceProperties) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const NodeId a = graph.base_nodes()[0];
  const NodeId b = graph.base_nodes()[1];
  EXPECT_EQ(graph.Distance(a, a), 0u);
  EXPECT_EQ(graph.Distance(a, b), graph.Distance(b, a));
  // Base to its location-parent: one step.
  EXPECT_EQ(graph.Distance(a, graph.Parent(a, 0).value()), 1u);
  // Top is location-levels + product-levels away from any base: 2 + 1.
  EXPECT_EQ(graph.Distance(a, graph.top_node()), 3u);
}

TEST(Graph, DistanceThroughCommonAncestor) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  // C1P1 and C2P1 share region R1: distance 2 (up + down).
  NodeAddress a1{{{0, 0}, {0, 0}}};
  NodeAddress a2{{{0, 1}, {0, 0}}};
  EXPECT_EQ(graph.Distance(graph.NodeFor(a1).value(),
                           graph.NodeFor(a2).value()),
            2u);
  // C1P1 and C3P1 only share ALL: distance 4.
  NodeAddress a3{{{0, 2}, {0, 0}}};
  EXPECT_EQ(graph.Distance(graph.NodeFor(a1).value(),
                           graph.NodeFor(a3).value()),
            4u);
}

TEST(Graph, NearestNodesBfsOrder) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const NodeId base = graph.base_nodes()[0];
  const auto near = graph.NearestNodes(base, 5);
  ASSERT_EQ(near.size(), 5u);
  // No duplicates, does not include the start node.
  std::set<NodeId> unique(near.begin(), near.end());
  EXPECT_EQ(unique.size(), near.size());
  EXPECT_EQ(unique.count(base), 0u);
  // Distances are non-decreasing along the result.
  for (std::size_t i = 1; i < near.size(); ++i) {
    EXPECT_LE(graph.Distance(base, near[i - 1]),
              graph.Distance(base, near[i]));
  }
}

TEST(Graph, NearestNodesCoversWholeGraph) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const auto all = graph.NearestNodes(graph.top_node(), 1000);
  EXPECT_EQ(all.size(), graph.num_nodes() - 1);
}

TEST(Graph, SetBaseSeriesValidation) {
  TimeSeriesGraph graph = testing::MakeFigure2Cube();
  EXPECT_FALSE(graph.SetBaseSeries(graph.top_node(), TimeSeries({1})).ok());
  EXPECT_FALSE(graph.SetBaseSeries(999999, TimeSeries({1})).ok());
}

TEST(Graph, BuildAggregatesRejectsMisalignedBase) {
  TimeSeriesGraph graph = testing::MakeFigure2Cube();
  ASSERT_TRUE(
      graph.SetBaseSeries(graph.base_nodes()[0], TimeSeries({1, 2})).ok());
  EXPECT_FALSE(graph.BuildAggregates().ok());
}

TEST(Graph, AdvanceTimeAppendsEverywhere) {
  TimeSeriesGraph graph = testing::MakeFigure2Cube(24);
  const std::size_t before = graph.series_length();
  std::vector<double> values(graph.num_base_nodes(), 2.0);
  ASSERT_TRUE(graph.AdvanceTime(values).ok());
  EXPECT_EQ(graph.series_length(), before + 1);
  const TimeSeries& top = graph.series(graph.top_node());
  EXPECT_NEAR(top[top.size() - 1], 2.0 * graph.num_base_nodes(), 1e-9);
}

TEST(Graph, AdvanceTimeValidatesInput) {
  TimeSeriesGraph graph = testing::MakeFigure2Cube(24);
  EXPECT_FALSE(graph.AdvanceTime({1.0}).ok());
}

TEST(Graph, NodeNameIsHumanReadable) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube();
  const std::string name = graph.NodeName(graph.base_nodes()[0]);
  EXPECT_NE(name.find("city="), std::string::npos);
  EXPECT_NE(name.find("product="), std::string::npos);
}

TEST(Graph, RejectsEmptySchema) {
  EXPECT_FALSE(TimeSeriesGraph::Create(CubeSchema()).ok());
}

}  // namespace
}  // namespace f2db
