// Metamorphic property tests: relations that must hold between RELATED
// runs of the engine, regardless of the concrete generated data —
// aggregation consistency up the hierarchy, insert-order invariance,
// degradation monotonicity (degraded answers are annotated, never
// silently wrong), and interval envelope containment.

#include <cmath>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property.h"
#include "testing/workload.h"

namespace f2db::testing {
namespace {

bool Close(double a, double b, double rel = 1e-9, double abs = 1e-9) {
  return std::abs(a - b) <= abs + rel * std::max(std::abs(a), std::abs(b));
}

NodeAddress ToNode(const OracleAddress& address) {
  NodeAddress out;
  out.coords.resize(address.coords.size());
  for (std::size_t d = 0; d < address.coords.size(); ++d) {
    out.coords[d] = {static_cast<LevelIndex>(address.coords[d].level),
                     static_cast<ValueIndex>(address.coords[d].value)};
  }
  return out;
}

// ------------------------------------ aggregation consistency up hierarchy

TEST(PropertyMetamorphicTest, AggregateSeriesEqualChildSumsAndOracle) {
  const std::uint64_t base = PropertySeed();
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    const WorkloadSpec spec = GenerateWorkload(
        SubSeed(base, "agg-" + std::to_string(shape)), shape, false);
    auto graph = BuildWorkloadGraph(spec);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    ReferenceOracle oracle(spec.dims);
    for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
      oracle.SetBaseSeries(cell, spec.base_history[cell]);
    }
    for (const OracleAddress& address : oracle.AllAddresses()) {
      const auto node = graph.value().NodeFor(ToNode(address));
      ASSERT_TRUE(node.ok()) << address.Key();
      const TimeSeries& series = graph.value().series(node.value());
      const std::vector<double> expected = oracle.SeriesOf(address);
      ASSERT_EQ(series.size(), expected.size());
      for (std::size_t t = 0; t < expected.size(); ++t) {
        ASSERT_TRUE(Close(series[t], expected[t], 1e-9, 1e-9))
            << "node " << address.Key() << " t=" << t << " engine "
            << series[t] << " oracle " << expected[t] << "\n"
            << ReplayHint(spec.seed);
      }
      // One aggregation step down along each dimension must also sum to
      // the node (the engine's own child sets, the oracle untouched).
      for (const auto& [dim, children] :
           graph.value().ChildSets(node.value())) {
        if (children.empty()) continue;
        for (std::size_t t = 0; t < series.size(); ++t) {
          double sum = 0.0;
          for (const NodeId child : children) {
            sum += graph.value().series(child)[t];
          }
          ASSERT_TRUE(Close(series[t], sum, 1e-9, 1e-9))
              << "node " << address.Key() << " dim " << dim << " t=" << t
              << "\n"
              << ReplayHint(spec.seed);
        }
      }
    }
  }
}

// --------------------------------------------------- insert-order invariance

TEST(PropertyMetamorphicTest, InsertOrderDoesNotChangeAnyForecast) {
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t seed = SubSeed(base, "order-" + std::to_string(round));
    const WorkloadSpec spec =
        GenerateWorkload(seed, round % NumWorkloadShapes(), false);
    auto graph_a = BuildWorkloadGraph(spec);
    auto graph_b = BuildWorkloadGraph(spec);
    ASSERT_TRUE(graph_a.ok() && graph_b.ok());
    auto config = BuildWorkloadConfiguration(spec, graph_a.value());
    ASSERT_TRUE(config.ok()) << config.status().ToString();

    EngineOptions options;
    options.maintenance_threads = 1;
    F2dbEngine a(std::move(graph_a).value(), options);
    F2dbEngine b(std::move(graph_b).value(), options);
    const ConfigurationEvaluator eval_a(a.graph(), 1.0);
    const ConfigurationEvaluator eval_b(b.graph(), 1.0);
    ASSERT_TRUE(a.LoadConfiguration(config.value(), eval_a).ok());
    ASSERT_TRUE(b.LoadConfiguration(config.value(), eval_b).ok());

    // Three complete rounds inserted in opposite orders.
    Rng rng(SubSeed(seed, "values"));
    const std::size_t cells = spec.base_history.size();
    std::int64_t time = static_cast<std::int64_t>(spec.history_length);
    for (std::size_t r = 0; r < 3; ++r, ++time) {
      std::vector<double> values;
      for (std::size_t c = 0; c < cells; ++c) {
        values.push_back(rng.Uniform(10.0, 100.0));
      }
      for (std::size_t c = 0; c < cells; ++c) {
        ASSERT_TRUE(a.InsertFact(a.graph().base_nodes()[c], time, values[c])
                        .ok());
      }
      for (std::size_t c = cells; c-- > 0;) {
        ASSERT_TRUE(b.InsertFact(b.graph().base_nodes()[c], time, values[c])
                        .ok());
      }
    }
    ASSERT_EQ(a.stats().time_advances, 3u);
    ASSERT_EQ(b.stats().time_advances, 3u);

    // Every node's forecast must be BITWISE identical: the applied batch
    // is a function of (time -> value), not of arrival order.
    for (NodeId node = 0; node < a.graph().num_nodes(); ++node) {
      const auto fa = a.ForecastNode(node, 4);
      const auto fb = b.ForecastNode(node, 4);
      ASSERT_EQ(fa.ok(), fb.ok()) << "node " << node << "\n"
                                  << ReplayHint(seed);
      if (!fa.ok()) continue;
      for (std::size_t h = 0; h < 4; ++h) {
        ASSERT_EQ(fa.value()[h], fb.value()[h])
            << "node " << node << " h=" << h << "\n"
            << ReplayHint(seed);
      }
    }
  }
}

// ------------------------------------------------- degradation monotonicity

/// Fixture state shared by the degradation properties: a loaded engine
/// with an oracle mirror, reestimate_after_updates = 1 so one advance
/// invalidates every model.
struct DegradationRig {
  WorkloadSpec spec;
  ReferenceOracle oracle{std::vector<OracleDimension>{}};
  std::unique_ptr<F2dbEngine> engine;

  static DegradationRig Build(std::uint64_t seed, std::size_t shape) {
    DegradationRig rig;
    rig.spec = GenerateWorkload(seed, shape, /*inject_refit_failures=*/true);
    rig.spec.reestimate_after_updates = 1;
    rig.oracle = ReferenceOracle(rig.spec.dims);
    for (std::size_t cell = 0; cell < rig.spec.base_history.size(); ++cell) {
      rig.oracle.SetBaseSeries(cell, rig.spec.base_history[cell]);
    }
    auto graph = BuildWorkloadGraph(rig.spec);
    if (!graph.ok()) return rig;
    EngineOptions options;
    options.reestimate_after_updates = 1;
    options.maintenance_threads = 1;
    // Never quarantine: this property queries every address while the
    // refit failpoint is armed, which would otherwise push the shared
    // model nodes over the quarantine threshold and keep them stale even
    // after the failpoint is disarmed (quarantine resets on advance, by
    // design — see the engine fault-injection tests for that behavior).
    options.quarantine_after_refit_failures = 0;
    rig.engine =
        std::make_unique<F2dbEngine>(std::move(graph).value(), options);
    auto config = BuildWorkloadConfiguration(rig.spec, rig.engine->graph());
    if (!config.ok()) {
      rig.engine.reset();
      return rig;
    }
    const ConfigurationEvaluator evaluator(rig.engine->graph(), 1.0);
    if (!rig.engine->LoadConfiguration(config.value(), evaluator).ok()) {
      rig.engine.reset();
      return rig;
    }
    InstallOracleConfiguration(rig.spec, config.value(), rig.engine->graph(),
                               rig.oracle);
    return rig;
  }

  void AdvanceOnce() {
    const std::int64_t time = oracle.frontier();
    for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
      const double value = 40.0 + static_cast<double>(cell);
      ASSERT_EQ(oracle.Insert(cell, time, value), OracleInsert::kAccepted);
      // Map the oracle's cell index to the engine node through the cell
      // ADDRESS — the two sides number base cells independently.
      const auto node = engine->graph().NodeFor(ToNode(oracle.CellAddress(cell)));
      ASSERT_TRUE(node.ok());
      ASSERT_TRUE(engine->InsertFact(node.value(), time, value).ok());
    }
  }
};

TEST(PropertyMetamorphicTest, FailedRefitDegradesToAnnotatedStaleAnswers) {
  const std::uint64_t seed = SubSeed(PropertySeed(), "degrade-stale");
  DegradationRig rig = DegradationRig::Build(seed, 1);
  ASSERT_NE(rig.engine, nullptr);
  failpoint::ScopedDisableAll guard;

  // Fresh configuration: full-fidelity addresses answer kNone and match
  // the oracle exactly.
  for (const OracleAddress& address : rig.oracle.AllAddresses()) {
    if (!rig.oracle.FullFidelity(address)) continue;
    const auto sql = BuildQuerySql(rig.spec, address, 3);
    const auto result = rig.engine->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql;
    EXPECT_EQ(result.value().degradation, DegradationLevel::kNone);
  }

  // One advance invalidates every model; with the refit failpoint armed
  // the same queries must still answer — annotated kStaleModel, values
  // equal to the never-refit oracle models.
  rig.AdvanceOnce();
  if (HasFatalFailure()) return;
  failpoint::Enable(kFailpointEngineRefit, failpoint::Policy::Always());
  for (const OracleAddress& address : rig.oracle.AllAddresses()) {
    if (!rig.oracle.FullFidelity(address)) continue;
    const auto sql = BuildQuerySql(rig.spec, address, 3);
    const auto result = rig.engine->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql << "\n" << ReplayHint(seed);
    EXPECT_EQ(result.value().degradation, DegradationLevel::kStaleModel)
        << sql << ": a silently-degraded answer\n"
        << ReplayHint(seed);
    const auto expected = rig.oracle.Forecast(address, 3);
    ASSERT_TRUE(expected.has_value());
    for (std::size_t h = 0; h < 3; ++h) {
      EXPECT_TRUE(Close(result.value().rows[h].value, (*expected)[h], 1e-6,
                        1e-8))
          << sql << " h=" << h << "\n"
          << ReplayHint(seed);
    }
  }

  // Disarming the failpoint lets the lazy refit succeed: the annotation
  // must return to kNone (monotonic recovery).
  failpoint::Disable(kFailpointEngineRefit);
  for (const OracleAddress& address : rig.oracle.AllAddresses()) {
    if (!rig.oracle.FullFidelity(address)) continue;
    const auto sql = BuildQuerySql(rig.spec, address, 3);
    const auto result = rig.engine->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql;
    EXPECT_EQ(result.value().degradation, DegradationLevel::kNone)
        << sql << "\n"
        << ReplayHint(seed);
  }
}

TEST(PropertyMetamorphicTest, ModellessChainServesAnnotatedNaiveFallback) {
  // Hand-built ladder bottom: Y's scheme points at Z; Z has no model and
  // its own scheme references itself, so the derived rung cannot help and
  // the engine must fall to the Drift-on-history rung — annotated, with a
  // finite answer.
  const std::uint64_t seed = SubSeed(PropertySeed(), "naive-fallback");
  // Shape 4 (the 2x2x2 cube) has 27 addresses and at most 4 models, so
  // two model-less addresses always exist.
  WorkloadSpec spec = GenerateWorkload(seed, 4, false);
  auto graph = BuildWorkloadGraph(spec);
  ASSERT_TRUE(graph.ok());
  ReferenceOracle oracle(spec.dims);
  const std::vector<OracleAddress> addresses = oracle.AllAddresses();

  // Rewire: the model stays wherever the generator put it; pick Y and Z
  // as the first two model-less addresses.
  std::vector<OracleAddress> model_less;
  for (const OracleAddress& address : addresses) {
    bool has_model = false;
    for (const ModelPlacement& placement : spec.models) {
      has_model = has_model || placement.node == address;
    }
    if (!has_model) model_less.push_back(address);
    if (model_less.size() == 2) break;
  }
  ASSERT_EQ(model_less.size(), 2u);
  const OracleAddress y = model_less[0];
  const OracleAddress z = model_less[1];
  for (SchemeChoice& choice : spec.schemes) {
    if (choice.target == y) choice.sources = {z};
    if (choice.target == z) choice.sources = {z};  // self: derivation dead end
  }

  EngineOptions options;
  options.maintenance_threads = 1;
  F2dbEngine engine(std::move(graph).value(), options);
  auto config = BuildWorkloadConfiguration(spec, engine.graph());
  ASSERT_TRUE(config.ok());
  const ConfigurationEvaluator evaluator(engine.graph(), 1.0);
  ASSERT_TRUE(engine.LoadConfiguration(config.value(), evaluator).ok());

  const auto result = engine.ExecuteSql(BuildQuerySql(spec, y, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().degradation, DegradationLevel::kNaiveFallback)
      << ReplayHint(seed);
  EXPECT_FALSE(result.value().degradation_reason.empty());
  for (const ForecastRow& row : result.value().rows) {
    EXPECT_TRUE(std::isfinite(row.value));
  }
}

// ------------------------------------------------------- interval envelope

TEST(PropertyMetamorphicTest, IntervalQueriesEnvelopeThePointForecast) {
  const std::uint64_t base = PropertySeed();
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    const std::uint64_t seed =
        SubSeed(base, "intervals-" + std::to_string(shape));
    const WorkloadSpec spec = GenerateWorkload(seed, shape, false);
    auto graph = BuildWorkloadGraph(spec);
    ASSERT_TRUE(graph.ok());
    EngineOptions options;
    options.maintenance_threads = 1;
    F2dbEngine engine(std::move(graph).value(), options);
    auto config = BuildWorkloadConfiguration(spec, engine.graph());
    ASSERT_TRUE(config.ok());
    const ConfigurationEvaluator evaluator(engine.graph(), 1.0);
    ASSERT_TRUE(engine.LoadConfiguration(config.value(), evaluator).ok());

    ReferenceOracle oracle(spec.dims);
    for (std::size_t cell = 0; cell < spec.base_history.size(); ++cell) {
      oracle.SetBaseSeries(cell, spec.base_history[cell]);
    }
    for (const OracleAddress& address : oracle.AllAddresses()) {
      const std::string plain_sql = BuildQuerySql(spec, address, 4);
      const std::string interval_sql = plain_sql + " WITH INTERVALS";
      const auto plain = engine.ExecuteSql(plain_sql);
      const auto interval = engine.ExecuteSql(interval_sql);
      if (!plain.ok()) continue;  // interval path may fail extra ways
      if (!interval.ok()) continue;
      ASSERT_EQ(interval.value().rows.size(), plain.value().rows.size());
      for (std::size_t h = 0; h < interval.value().rows.size(); ++h) {
        const ForecastRow& row = interval.value().rows[h];
        ASSERT_TRUE(row.has_interval);
        // Same point forecast as the plain query (same snapshot, no
        // maintenance in between)...
        EXPECT_EQ(row.value, plain.value().rows[h].value)
            << interval_sql << " h=" << h << "\n"
            << ReplayHint(seed);
        // ...and a sane envelope around it.
        EXPECT_LE(row.lower, row.value) << interval_sql << " h=" << h;
        EXPECT_GE(row.upper, row.value) << interval_sql << " h=" << h;
      }
    }
  }
}

}  // namespace
}  // namespace f2db::testing
