// Differential property tests: generated workloads replayed through the
// reference oracle, the embedded engine, and the TCP server must agree —
// forecast values within tolerance, insert verdicts by status code, and
// degradation annotations (a degraded answer is annotated, never silently
// wrong). Failures shrink to a minimal op list and print a replay hint.

#include <string>

#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property.h"
#include "testing/workload.h"

namespace f2db::testing {
namespace {

/// Runs one spec; on failure shrinks it (embedded-only for speed) and
/// fails the test with the minimized spec and the replay hint.
void RunAndReport(const WorkloadSpec& spec) {
  DifferentialReport report = RunDifferential(spec);
  if (report.ok) return;
  DifferentialOptions no_server;
  no_server.run_server = false;
  const WorkloadSpec shrunk =
      ShrinkWorkload(spec, [&](const WorkloadSpec& candidate) {
        return !RunDifferential(candidate, no_server).ok;
      });
  const DifferentialReport shrunk_report = RunDifferential(shrunk, no_server);
  FAIL() << report.failure << "\n"
         << ReplayHint(spec.seed) << "\n"
         << "minimized to " << shrunk.ops.size() << " op(s):\n"
         << DescribeWorkload(shrunk) << "\n"
         << (shrunk_report.ok ? "" : shrunk_report.failure);
}

TEST(PropertyDifferentialTest, GeneratedWorkloadsAgree) {
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(3);
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::uint64_t seed =
          SubSeed(base, "diff-" + std::to_string(shape) + "-" +
                            std::to_string(round));
      RunAndReport(GenerateWorkload(seed, shape,
                                    /*inject_refit_failures=*/false));
      if (HasFatalFailure()) return;
    }
  }
}

TEST(PropertyDifferentialTest, SeedMixedWorkloadsAgree) {
  // The fully seed-driven entry point (shape and fault mode drawn from the
  // seed) — the generator the nightly job exercises hardest.
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(8);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t seed = SubSeed(base, "mixed-" + std::to_string(round));
    RunAndReport(GenerateWorkload(seed));
    if (HasFatalFailure()) return;
  }
}

TEST(PropertyDifferentialTest, FaultInjectionRunsStayAnnotated) {
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::uint64_t seed =
          SubSeed(base, "fault-" + std::to_string(shape) + "-" +
                            std::to_string(round));
      const WorkloadSpec spec =
          GenerateWorkload(seed, shape, /*inject_refit_failures=*/true);
      RunAndReport(spec);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(PropertyDifferentialTest, TenThousandQueriesAcrossShapes) {
  // ISSUE acceptance: engine and server agree with the oracle on >= 10k
  // generated queries across >= 5 cube shapes. 1700 queries per shape x 6
  // shapes = 10200.
  const std::uint64_t base = PropertySeed();
  const std::size_t per_shape = 1700;
  std::size_t total_queries = 0;
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    const std::uint64_t seed = SubSeed(base, "storm-" + std::to_string(shape));
    const WorkloadSpec spec = GenerateQueryStorm(seed, shape, per_shape);
    const DifferentialReport report = RunDifferential(spec);
    if (!report.ok) {
      FAIL() << report.failure << "\n" << ReplayHint(spec.seed);
      return;
    }
    total_queries += report.queries;
  }
  EXPECT_GE(total_queries, 10000u);
  EXPECT_GE(NumWorkloadShapes(), 5u);
}

TEST(PropertyDifferentialTest, ReportCountsAreConsistent) {
  const std::uint64_t seed = SubSeed(PropertySeed(), "report-counts");
  const WorkloadSpec spec = GenerateWorkload(seed, 2, false);
  const DifferentialReport report = RunDifferential(spec);
  ASSERT_TRUE(report.ok) << report.failure << "\n" << ReplayHint(seed);
  std::size_t expected_queries = 0;
  for (const WorkloadOp& op : spec.ops) {
    if (op.kind == OpKind::kQuery) ++expected_queries;
  }
  EXPECT_EQ(report.queries, expected_queries);
  EXPECT_GE(report.rows_compared, report.queries);
}

// ------------------------------------------------- pinned regression seeds

// Satellite (a): the SQL lexer rejected exponent-notation numeric literals
// ("1.5e-05"), so any INSERT whose %.17g-rendered measure carried an
// exponent diverged from the oracle (engine: parse error, oracle:
// accepted). The kTiny series regime renders such values; this workload is
// pinned on it. See engine/query.cc (lexer) and
// tests/engine/query_test.cc for the direct parser regressions.
TEST(PropertyDifferentialTest, RegressionTinyValuesSurviveSqlRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const WorkloadSpec spec = GenerateWorkload(seed);
    bool has_tiny = false;
    for (const auto& history : spec.base_history) {
      for (const double v : history) has_tiny = has_tiny || v < 1e-3;
    }
    if (!has_tiny) continue;
    RunAndReport(spec);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace f2db::testing
