// Math-substrate property tests (satellite b): models fit on
// generator-known processes recover the generating parameters, and the
// optimizer's outcome is invariant to series/objective scaling.

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/sarima_generator.h"
#include "gtest/gtest.h"
#include "math/optimizer.h"
#include "testing/property.h"
#include "ts/arima.h"
#include "ts/exponential_smoothing.h"
#include "ts/time_series.h"

namespace f2db::testing {
namespace {

TEST(PropertyMathTest, ArimaRecoversAr1Coefficient) {
  // AR(1) with a strong positive coefficient: the fitted phi must land in
  // the right region across several seeded realizations. Loose tolerance —
  // the estimator sees 400 noisy observations, not the true process.
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(3);
  for (std::size_t round = 0; round < rounds; ++round) {
    SarimaProcess process;
    process.order = ArimaOrder{1, 0, 0, 0, 0, 0, 1};
    process.phi = {0.7};
    process.noise_stddev = 1.0;
    process.level_offset = 100.0;
    Rng rng(SubSeed(base, "ar1-" + std::to_string(round)));
    const TimeSeries sample = SimulateSarima(process, 400, rng);

    ArimaModel model(ArimaOrder{1, 0, 0, 0, 0, 0, 1});
    ASSERT_TRUE(model.Fit(sample).ok()) << ReplayHint(base);
    ASSERT_EQ(model.phi().size(), 1u);
    EXPECT_NEAR(model.phi()[0], 0.7, 0.25)
        << "round " << round << "; " << ReplayHint(base);
  }
}

TEST(PropertyMathTest, HoltWintersTracksSeasonalTrendProcess) {
  // A clean seasonal + trend signal with mild noise: the in-sample SMAPE
  // of triple exponential smoothing must be small, and the forecast must
  // keep the seasonal shape (peak stays the peak).
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  const std::size_t period = 4;
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng(SubSeed(base, "hw-" + std::to_string(round)));
    std::vector<double> values;
    const double season[period] = {10.0, -5.0, 3.0, -8.0};
    for (std::size_t t = 0; t < 120; ++t) {
      values.push_back(100.0 + 0.5 * static_cast<double>(t) +
                       season[t % period] + rng.Gaussian(0.0, 0.5));
    }
    auto model = ExponentialSmoothingModel::HoltWintersAdditive(period);
    ASSERT_TRUE(model->Fit(TimeSeries(values)).ok());

    const std::vector<double> forecast = model->Forecast(2 * period);
    ASSERT_EQ(forecast.size(), 2 * period);
    // t = 120 is phase 0 (the +10 peak); within each forecast period the
    // phase-0 value must exceed the phase-3 trough.
    EXPECT_GT(forecast[0], forecast[3]) << ReplayHint(base);
    EXPECT_GT(forecast[4], forecast[7]) << ReplayHint(base);
    // One-period-ahead level is near the deterministic continuation.
    const double expected0 = 100.0 + 0.5 * 120.0 + season[0];
    EXPECT_NEAR(forecast[0], expected0, 5.0) << ReplayHint(base);
  }
}

TEST(PropertyMathTest, NelderMeadArgminIsScaleInvariant) {
  // argmin of a * (x - c)^2 must not depend on a: the optimizer normalizes
  // nothing, but the simplex contraction is driven by comparisons only.
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(4);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng(SubSeed(base, "scale-" + std::to_string(round)));
    const double c = rng.Uniform(-5.0, 5.0);
    const auto argmin_for = [&](double scale) {
      const Objective objective = [c, scale](const std::vector<double>& x) {
        return scale * (x[0] - c) * (x[0] - c);
      };
      OptimizerOptions options;
      options.max_evaluations = 4000;
      return NelderMead(objective, {0.0}, Bounds{}, options);
    };
    const OptimizationResult small = argmin_for(1.0);
    const OptimizationResult large = argmin_for(1e6);
    ASSERT_TRUE(small.converged);
    ASSERT_TRUE(large.converged);
    EXPECT_NEAR(small.x[0], c, 1e-3) << ReplayHint(base);
    EXPECT_NEAR(large.x[0], small.x[0], 1e-3)
        << "c=" << c << "; " << ReplayHint(base);
  }
}

TEST(PropertyMathTest, SesAlphaIsInvariantToSeriesScaling) {
  // SES minimizes sum of squared one-step errors; scaling the series by a
  // constant scales the objective uniformly, so the fitted alpha must not
  // move (beyond optimizer tolerance).
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(3);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng(SubSeed(base, "ses-scale-" + std::to_string(round)));
    std::vector<double> values;
    double level = 50.0;
    for (std::size_t t = 0; t < 80; ++t) {
      level += rng.Gaussian(0.0, 2.0);
      values.push_back(level);
    }
    std::vector<double> scaled = values;
    for (double& v : scaled) v *= 1000.0;

    auto a = ExponentialSmoothingModel::Ses();
    auto b = ExponentialSmoothingModel::Ses();
    ASSERT_TRUE(a->Fit(TimeSeries(values)).ok());
    ASSERT_TRUE(b->Fit(TimeSeries(scaled)).ok());
    EXPECT_NEAR(a->alpha(), b->alpha(), 0.05)
        << "round " << round << "; " << ReplayHint(base);

    // And the forecasts scale linearly with the series.
    const double fa = a->Forecast(1)[0];
    const double fb = b->Forecast(1)[0];
    EXPECT_NEAR(fb, 1000.0 * fa, std::abs(fa) * 10.0 + 1e-6)
        << ReplayHint(base);
  }
}

TEST(PropertyMathTest, HillClimbAndNelderMeadAgreeOnConvexObjective) {
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(3);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng(SubSeed(base, "convex-" + std::to_string(round)));
    const double cx = rng.Uniform(-3.0, 3.0);
    const double cy = rng.Uniform(-3.0, 3.0);
    const Objective objective = [cx, cy](const std::vector<double>& x) {
      return (x[0] - cx) * (x[0] - cx) + 2.0 * (x[1] - cy) * (x[1] - cy);
    };
    OptimizerOptions options;
    options.max_evaluations = 8000;
    const OptimizationResult nm = NelderMead(objective, {0.0, 0.0}, Bounds{},
                                             options);
    const OptimizationResult hc = HillClimb(objective, {0.0, 0.0}, Bounds{},
                                            options);
    EXPECT_NEAR(nm.x[0], cx, 1e-2) << ReplayHint(base);
    EXPECT_NEAR(hc.x[0], cx, 1e-2) << ReplayHint(base);
    EXPECT_NEAR(nm.x[1], cy, 1e-2) << ReplayHint(base);
    EXPECT_NEAR(hc.x[1], cy, 1e-2) << ReplayHint(base);
  }
}

}  // namespace
}  // namespace f2db::testing
