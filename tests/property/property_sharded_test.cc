// Scatter-gather property tests: generated shard-safe workloads replayed
// through a ShardedEngine (M in {1, 2, 7}) and the reference oracle must
// agree — merged forecast values within tolerance, insert verdicts by
// status code, and the merged degradation annotation (the worst level of
// any contributing shard) under fault injection.

#include <string>

#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/property.h"
#include "testing/workload.h"

namespace f2db::testing {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 7};

void RunAndReport(const WorkloadSpec& spec, std::size_t num_shards) {
  ShardedDifferentialOptions options;
  options.num_shards = num_shards;
  const DifferentialReport report = RunShardedDifferential(spec, options);
  if (report.ok) return;
  FAIL() << report.failure << "\n"
         << ReplayHint(spec.seed) << "\n"
         << DescribeWorkload(spec);
}

TEST(ScatterGatherTest, ShardCountsAgreeWithOracle) {
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  for (const std::size_t m : kShardCounts) {
    for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
      for (std::size_t round = 0; round < rounds; ++round) {
        const std::uint64_t seed =
            SubSeed(base, "scatter-" + std::to_string(m) + "-" +
                              std::to_string(shape) + "-" +
                              std::to_string(round));
        RunAndReport(GenerateScatterGatherWorkload(
                         seed, shape, /*inject_refit_failures=*/false),
                     m);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(ScatterGatherTest, FaultInjectionMergesWorstDegradation) {
  // Every shard past the re-estimation threshold serves kStaleModel, and
  // the scatter-gather merge must surface it — the differential fails on
  // any silently-degraded (or silently-fine) merged answer.
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  std::size_t degraded_rows = 0;
  for (const std::size_t m : kShardCounts) {
    for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
      for (std::size_t round = 0; round < rounds; ++round) {
        const std::uint64_t seed =
            SubSeed(base, "scatter-fault-" + std::to_string(m) + "-" +
                              std::to_string(shape) + "-" +
                              std::to_string(round));
        const WorkloadSpec spec = GenerateScatterGatherWorkload(
            seed, shape, /*inject_refit_failures=*/true);
        ShardedDifferentialOptions options;
        options.num_shards = m;
        const DifferentialReport report =
            RunShardedDifferential(spec, options);
        if (!report.ok) {
          FAIL() << report.failure << "\n"
                 << ReplayHint(seed) << "\n"
                 << DescribeWorkload(spec);
          return;
        }
        degraded_rows += report.degraded_rows;
      }
    }
  }
  // Coverage sanity: fault mode actually produced annotated answers.
  EXPECT_GT(degraded_rows, 0u);
}

TEST(ScatterGatherTest, WorkloadsAreDeterministic) {
  const std::uint64_t seed = SubSeed(PropertySeed(), "scatter-determinism");
  const WorkloadSpec a = GenerateScatterGatherWorkload(seed, 1, false);
  const WorkloadSpec b = GenerateScatterGatherWorkload(seed, 1, false);
  EXPECT_EQ(DescribeWorkload(a), DescribeWorkload(b));
  // Shard-safe by construction: a model at every base cell and a scheme at
  // every address.
  const ReferenceOracle probe(a.dims);
  EXPECT_EQ(a.models.size(), probe.num_base_cells());
  EXPECT_EQ(a.schemes.size(), probe.AllAddresses().size());
  for (const WorkloadOp& op : a.ops) {
    EXPECT_NE(op.kind, OpKind::kInsertPartial);
    EXPECT_NE(op.kind, OpKind::kInsertInjectedFault);
  }
}

TEST(ScatterGatherTest, ReportCountsAreConsistent) {
  const std::uint64_t seed = SubSeed(PropertySeed(), "scatter-counts");
  const WorkloadSpec spec = GenerateScatterGatherWorkload(seed, 2, false);
  ShardedDifferentialOptions options;
  options.num_shards = 2;
  const DifferentialReport report = RunShardedDifferential(spec, options);
  ASSERT_TRUE(report.ok) << report.failure << "\n" << ReplayHint(seed);
  std::size_t expected_queries = 0;
  for (const WorkloadOp& op : spec.ops) {
    if (op.kind == OpKind::kQuery) ++expected_queries;
  }
  EXPECT_EQ(report.queries, expected_queries);
  EXPECT_GE(report.rows_compared, report.queries);
}

}  // namespace
}  // namespace f2db::testing
