// Wire-protocol property tests (satellite c): encode -> decode is the
// identity for arbitrary frames (NUL bytes and all), the incremental
// FrameDecoder reassembles any chunking of any frame stream, and the
// decoder never crashes on mutated or truncated bytes — it either yields
// frames or poisons the stream with a Status.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "server/wire.h"
#include "testing/property.h"

namespace f2db::testing {
namespace {

const FrameType kAllTypes[] = {FrameType::kQuery, FrameType::kInsert,
                               FrameType::kStats, FrameType::kPing};

std::string RandomBody(Rng& rng, std::size_t max_len) {
  const std::size_t len =
      static_cast<std::size_t>(rng.UniformInt(0, static_cast<int64_t>(max_len)));
  std::string body;
  body.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Full byte range, embedded NULs included.
    body.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return body;
}

TEST(PropertyWireTest, RequestEncodeDecodeIsIdentity) {
  Rng rng(SubSeed(PropertySeed(), "wire-request"));
  const std::size_t rounds = PropertyIterations(200);
  for (std::size_t round = 0; round < rounds; ++round) {
    WireRequest request;
    request.type = kAllTypes[rng.UniformInt(0, 3)];
    request.body = RandomBody(rng, 512);
    const std::string frame = EncodeRequest(request);

    // Strip the length prefix, decode the payload.
    ASSERT_GE(frame.size(), 4u);
    const auto decoded = DecodeRequestPayload(
        std::string_view(frame).substr(4));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, request.type);
    EXPECT_EQ(decoded.value().body, request.body);
  }
}

TEST(PropertyWireTest, ResponseEncodeDecodeIsIdentity) {
  Rng rng(SubSeed(PropertySeed(), "wire-response"));
  const std::size_t rounds = PropertyIterations(200);
  for (std::size_t round = 0; round < rounds; ++round) {
    WireResponse response;
    response.type = kAllTypes[rng.UniformInt(0, 3)];
    response.status = static_cast<StatusCode>(rng.UniformInt(0, 8));
    response.degradation = static_cast<DegradationLevel>(rng.UniformInt(0, 4));
    response.body = RandomBody(rng, 512);
    const std::string frame = EncodeResponse(response);

    ASSERT_GE(frame.size(), 4u);
    const auto decoded = DecodeResponsePayload(
        std::string_view(frame).substr(4));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, response.type);
    EXPECT_EQ(decoded.value().status, response.status);
    EXPECT_EQ(decoded.value().degradation, response.degradation);
    EXPECT_EQ(decoded.value().body, response.body);
  }
}

TEST(PropertyWireTest, DecoderReassemblesArbitraryChunking) {
  Rng rng(SubSeed(PropertySeed(), "wire-chunking"));
  const std::size_t rounds = PropertyIterations(50);
  for (std::size_t round = 0; round < rounds; ++round) {
    // A stream of several frames...
    std::vector<WireRequest> requests;
    std::string stream;
    const std::size_t frames = 1 + rng.UniformInt(0, 4);
    for (std::size_t f = 0; f < frames; ++f) {
      WireRequest request;
      request.type = kAllTypes[rng.UniformInt(0, 3)];
      request.body = RandomBody(rng, 64);
      stream += EncodeRequest(request);
      requests.push_back(std::move(request));
    }
    // ...fed in random-sized chunks must come back frame-for-frame.
    FrameDecoder decoder;
    std::vector<std::string> payloads;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<int64_t>(stream.size() - pos)));
      ASSERT_TRUE(decoder.Feed(stream.data() + pos, chunk).ok());
      pos += chunk;
      while (auto payload = decoder.Next()) {
        payloads.push_back(std::move(*payload));
      }
    }
    ASSERT_EQ(payloads.size(), requests.size());
    for (std::size_t f = 0; f < payloads.size(); ++f) {
      const auto decoded = DecodeRequestPayload(payloads[f]);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().type, requests[f].type);
      EXPECT_EQ(decoded.value().body, requests[f].body);
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(PropertyWireTest, DecoderNeverCrashesOnMutatedBytes) {
  Rng rng(SubSeed(PropertySeed(), "wire-mutation"));
  const std::size_t rounds = PropertyIterations(200);
  for (std::size_t round = 0; round < rounds; ++round) {
    WireRequest request;
    request.type = kAllTypes[rng.UniformInt(0, 3)];
    request.body = RandomBody(rng, 128);
    std::string frame = EncodeRequest(request);

    // Flip 1..8 random bytes anywhere in the frame (length prefix
    // included), then feed the result. Any outcome is acceptable except a
    // crash: OK with frames, OK with nothing yet, or a poison Status.
    const std::size_t flips = 1 + rng.UniformInt(0, 7);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(frame.size()) - 1));
      frame[at] = static_cast<char>(rng.UniformInt(0, 255));
    }
    FrameDecoder decoder;
    const Status fed = decoder.Feed(frame.data(), frame.size());
    if (!fed.ok()) {
      // Poisoned: every later call keeps failing and yields nothing.
      EXPECT_FALSE(decoder.Feed("x", 1).ok());
      EXPECT_FALSE(decoder.Next().has_value());
      continue;
    }
    while (auto payload = decoder.Next()) {
      // Whatever survived framing must decode or fail with a Status —
      // exercising the payload validators on garbage.
      (void)DecodeRequestPayload(*payload);
      (void)DecodeResponsePayload(*payload);
    }
  }
}

TEST(PropertyWireTest, DecoderNeverCrashesOnTruncatedFrames) {
  Rng rng(SubSeed(PropertySeed(), "wire-truncation"));
  const std::size_t rounds = PropertyIterations(100);
  for (std::size_t round = 0; round < rounds; ++round) {
    WireRequest request;
    request.type = kAllTypes[rng.UniformInt(0, 3)];
    request.body = RandomBody(rng, 128);
    const std::string frame = EncodeRequest(request);
    const std::size_t keep = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(frame.size()) - 1));

    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(frame.data(), keep).ok());
    // An incomplete frame yields nothing and stays buffered.
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_EQ(decoder.buffered_bytes(), keep);
    // Completing the bytes releases exactly the original payload.
    ASSERT_TRUE(decoder.Feed(frame.data() + keep, frame.size() - keep).ok());
    const auto payload = decoder.Next();
    ASSERT_TRUE(payload.has_value());
    const auto decoded = DecodeRequestPayload(*payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().body, request.body);
  }
}

TEST(PropertyWireTest, OversizedLengthPrefixPoisonsInsteadOfAllocating) {
  Rng rng(SubSeed(PropertySeed(), "wire-oversize"));
  const std::size_t rounds = PropertyIterations(20);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint32_t announced =
        kMaxFrameBytes + 1 +
        static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 20));
    char prefix[4];
    prefix[0] = static_cast<char>(announced & 0xFF);
    prefix[1] = static_cast<char>((announced >> 8) & 0xFF);
    prefix[2] = static_cast<char>((announced >> 16) & 0xFF);
    prefix[3] = static_cast<char>((announced >> 24) & 0xFF);
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.Feed(prefix, 4).ok());
    EXPECT_FALSE(decoder.Next().has_value());
  }
}

}  // namespace
}  // namespace f2db::testing
