// Self-tests of the correctness harness: the seeded generator is
// deterministic, the seed/budget plumbing behaves, the shrinker minimizes,
// and the reference oracle agrees with hand-computed ground truth on a
// cube small enough to check by eye.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property.h"
#include "testing/workload.h"
#include "ts/model_factory.h"

namespace f2db::testing {
namespace {

TEST(PropertyHarnessTest, SameSeedGeneratesIdenticalWorkloads) {
  const std::uint64_t base = PropertySeed();
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = SubSeed(base, "determinism-" + std::to_string(i));
    const WorkloadSpec a = GenerateWorkload(seed);
    const WorkloadSpec b = GenerateWorkload(seed);
    EXPECT_EQ(DescribeWorkload(a), DescribeWorkload(b)) << "seed " << seed;
  }
}

TEST(PropertyHarnessTest, SameSeedGeneratesIdenticalStorms) {
  const std::uint64_t seed = SubSeed(PropertySeed(), "storm-determinism");
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    const WorkloadSpec a = GenerateQueryStorm(seed, shape, 200);
    const WorkloadSpec b = GenerateQueryStorm(seed, shape, 200);
    EXPECT_EQ(DescribeWorkload(a), DescribeWorkload(b)) << "shape " << shape;
  }
}

TEST(PropertyHarnessTest, DifferentSeedsGenerateDifferentWorkloads) {
  const std::uint64_t base = PropertySeed();
  const WorkloadSpec a = GenerateWorkload(SubSeed(base, "distinct-a"));
  const WorkloadSpec b = GenerateWorkload(SubSeed(base, "distinct-b"));
  EXPECT_NE(DescribeWorkload(a), DescribeWorkload(b));
}

TEST(PropertyHarnessTest, SubSeedDependsOnLabel) {
  EXPECT_NE(SubSeed(1, "alpha"), SubSeed(1, "beta"));
  EXPECT_EQ(SubSeed(1, "alpha"), SubSeed(1, "alpha"));
  EXPECT_NE(SubSeed(1, "alpha"), SubSeed(2, "alpha"));
}

TEST(PropertyHarnessTest, IterationBudgetScalesWithEnvironment) {
  unsetenv("F2DB_PROPERTY_ITERATIONS");
  EXPECT_EQ(PropertyIterations(3), 3u);
  setenv("F2DB_PROPERTY_ITERATIONS", "100", 1);
  EXPECT_EQ(PropertyBudgetMultiplier(), 100u);
  EXPECT_EQ(PropertyIterations(3), 300u);
  setenv("F2DB_PROPERTY_ITERATIONS", "garbage", 1);
  EXPECT_EQ(PropertyIterations(3), 3u);
  unsetenv("F2DB_PROPERTY_ITERATIONS");
}

TEST(PropertyHarnessTest, ReplayHintNamesTheSeedAndTheFilter) {
  const std::string hint = ReplayHint(12345);
  EXPECT_NE(hint.find("F2DB_PROPERTY_SEED=12345"), std::string::npos);
  EXPECT_NE(hint.find("ctest -R Property"), std::string::npos);
}

TEST(PropertyHarnessTest, EveryShapeGeneratesConsistentSpecs) {
  const std::uint64_t base = PropertySeed();
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    const WorkloadSpec spec = GenerateWorkload(
        SubSeed(base, "shape-" + std::to_string(shape)), shape,
        /*inject_refit_failures=*/false);
    EXPECT_EQ(spec.shape_index, shape);
    EXPECT_FALSE(spec.dims.empty());
    const ReferenceOracle oracle(spec.dims);
    EXPECT_EQ(spec.base_history.size(), oracle.num_base_cells());
    for (const auto& history : spec.base_history) {
      EXPECT_EQ(history.size(), spec.history_length);
    }
    EXPECT_FALSE(spec.models.empty());
    // Every address is covered by an explicit scheme (the engine's
    // nearest-model fallback fill must never kick in).
    EXPECT_EQ(spec.schemes.size(), oracle.AllAddresses().size());
    EXPECT_FALSE(spec.ops.empty());
  }
}

// --------------------------------------------------------------- shrinker

TEST(PropertyHarnessTest, ShrinkerMinimizesToTheSingleFailingOp) {
  WorkloadSpec spec =
      GenerateWorkload(SubSeed(PropertySeed(), "shrinker"), 0, false);
  // Synthetic predicate: the spec "fails" while it still contains at least
  // one behind-frontier insert op.
  const auto still_fails = [](const WorkloadSpec& candidate) {
    for (const WorkloadOp& op : candidate.ops) {
      if (op.kind == OpKind::kInsertBehind) return true;
    }
    return false;
  };
  WorkloadOp marker;
  marker.kind = OpKind::kInsertBehind;
  spec.ops.push_back(marker);  // guarantee the predicate holds
  const WorkloadSpec shrunk = ShrinkWorkload(spec, still_fails);
  ASSERT_EQ(shrunk.ops.size(), 1u);
  EXPECT_EQ(shrunk.ops[0].kind, OpKind::kInsertBehind);
}

TEST(PropertyHarnessTest, ShrinkerReturnsSpecUnchangedWhenItPasses) {
  const WorkloadSpec spec =
      GenerateWorkload(SubSeed(PropertySeed(), "shrink-pass"), 1, false);
  const WorkloadSpec shrunk =
      ShrinkWorkload(spec, [](const WorkloadSpec&) { return false; });
  EXPECT_EQ(DescribeWorkload(shrunk), DescribeWorkload(spec));
}

// ---------------------------------------------------------- oracle sanity

std::vector<OracleDimension> TwoCellDim() {
  OracleDimension dim;
  dim.name = "d";
  dim.level_names = {"city"};
  dim.values = {{"a", "b"}};
  return {dim};
}

TEST(PropertyHarnessTest, OracleAggregatesByFlatSum) {
  ReferenceOracle oracle(TwoCellDim());
  oracle.SetBaseSeries(0, {1.0, 2.0, 3.0});
  oracle.SetBaseSeries(1, {10.0, 20.0, 30.0});
  OracleAddress all;
  all.coords = {{1, 0}};  // ALL
  EXPECT_EQ(oracle.SeriesOf(all), (std::vector<double>{11.0, 22.0, 33.0}));
  EXPECT_DOUBLE_EQ(oracle.HistorySum(all), 66.0);
  OracleAddress cell_a = oracle.CellAddress(0);
  EXPECT_DOUBLE_EQ(oracle.Weight({all}, cell_a), 6.0 / 66.0);
}

TEST(PropertyHarnessTest, OracleInsertContractMatchesTheEngineContract) {
  ReferenceOracle oracle(TwoCellDim());
  oracle.SetBaseSeries(0, {1.0, 2.0});
  oracle.SetBaseSeries(1, {3.0, 4.0});
  EXPECT_EQ(oracle.frontier(), 2);
  EXPECT_EQ(oracle.Insert(0, 1, 5.0), OracleInsert::kBehindFrontier);
  EXPECT_EQ(oracle.Insert(0, 2, std::nan("")), OracleInsert::kNonFinite);
  EXPECT_EQ(oracle.Insert(7, 2, 5.0), OracleInsert::kUnknownCell);
  EXPECT_EQ(oracle.Insert(0, 2, 5.0), OracleInsert::kAccepted);
  EXPECT_EQ(oracle.Insert(0, 2, 6.0), OracleInsert::kDuplicate);
  EXPECT_EQ(oracle.pending_inserts(), 1u);
  EXPECT_EQ(oracle.advances(), 0u);
  EXPECT_EQ(oracle.Insert(1, 2, 6.0), OracleInsert::kAccepted);
  EXPECT_EQ(oracle.pending_inserts(), 0u);
  EXPECT_EQ(oracle.advances(), 1u);
  EXPECT_EQ(oracle.frontier(), 3);
}

TEST(PropertyHarnessTest, OracleForecastAppliesTheDerivationWeight) {
  ReferenceOracle oracle(TwoCellDim());
  oracle.SetBaseSeries(0, {1.0, 1.0, 1.0, 1.0});
  oracle.SetBaseSeries(1, {3.0, 3.0, 3.0, 3.0});
  OracleAddress all;
  all.coords = {{1, 0}};
  const OracleAddress cell_a = oracle.CellAddress(0);

  ModelSpec spec;
  spec.type = ModelType::kMean;
  ModelFactory factory(spec);
  auto model = factory.CreateAndFit(TimeSeries(oracle.SeriesOf(all)));
  ASSERT_TRUE(model.ok());
  oracle.SetModel(all, std::move(model).value());
  oracle.SetScheme(all, {all});
  oracle.SetScheme(cell_a, {all});

  // forecast(ALL) = mean = 4; weight(cell_a from ALL) = 4/16 = 0.25.
  const auto direct = oracle.Forecast(all, 2);
  ASSERT_TRUE(direct.has_value());
  EXPECT_DOUBLE_EQ((*direct)[0], 4.0);
  const auto derived = oracle.Forecast(cell_a, 2);
  ASSERT_TRUE(derived.has_value());
  EXPECT_DOUBLE_EQ((*derived)[0], 1.0);
  EXPECT_TRUE(oracle.FullFidelity(cell_a));

  // A scheme through a model-less node degrades fidelity but still derives.
  const OracleAddress cell_b = oracle.CellAddress(1);
  oracle.SetScheme(cell_b, {cell_a});
  EXPECT_FALSE(oracle.FullFidelity(cell_b));
  const auto chained = oracle.Forecast(cell_b, 1);
  ASSERT_TRUE(chained.has_value());
  EXPECT_DOUBLE_EQ((*chained)[0], 3.0);  // weight 12/4 * forecast 1
}

TEST(PropertyHarnessTest, OracleSmapeSkipsBothZeroTerms) {
  EXPECT_DOUBLE_EQ(ReferenceOracle::Smape({0.0, 1.0}, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(ReferenceOracle::Smape({1.0}, {0.0}), 1.0);
  EXPECT_DOUBLE_EQ(ReferenceOracle::Smape({}, {}), 0.0);
}

}  // namespace
}  // namespace f2db::testing
