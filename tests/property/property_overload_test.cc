// Overload differential property tests: generated workloads replayed
// against a deliberately under-provisioned, brownout-configured loopback
// server under concurrent client pressure. The invariant under test is
// degraded-never-wrong: every answer the flood produces is either full
// fidelity and oracle-correct, DEGRADED with the annotation present and
// still oracle-correct, or an honest overload rejection (kUnavailable /
// kDeadlineExceeded). A silently degraded or silently wrong answer fails.

#include <string>

#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/property.h"
#include "testing/workload.h"

namespace f2db::testing {
namespace {

void RunAndReport(const WorkloadSpec& spec,
                  const OverloadDifferentialOptions& options) {
  const OverloadDifferentialReport report =
      RunOverloadDifferential(spec, options);
  EXPECT_TRUE(report.ok) << report.failure << "\n" << ReplayHint(spec.seed);
  // Accounting closes: every query got exactly one classified outcome.
  EXPECT_EQ(report.queries_sent, report.ok_full_fidelity + report.ok_degraded +
                                     report.shed + report.deadline_expired);
}

TEST(OverloadDifferentialTest, FaultModeFloodsStayAnnotatedAndCorrect) {
  // Fault mode arms the engine.refit failpoint, so every query lands on
  // the stale-model rung — the flood must see ONLY annotated degraded
  // answers (value-checked against the oracle) or honest rejections.
  const std::uint64_t base = PropertySeed();
  const std::size_t rounds = PropertyIterations(2);
  OverloadDifferentialOptions options;
  options.admission_queue_limit = 2;  // small enough that shedding happens
  for (std::size_t shape = 0; shape < NumWorkloadShapes(); ++shape) {
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::uint64_t seed =
          SubSeed(base, "overload-" + std::to_string(shape) + "-" +
                            std::to_string(round));
      const WorkloadSpec spec =
          GenerateWorkload(seed, shape, /*inject_refit_failures=*/true);
      RunAndReport(spec, options);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(OverloadDifferentialTest, DegradedAnswersAreActuallyExercised) {
  // At least one generated flood must hit the degraded path, or the suite
  // is vacuous. Aggregate across seeds so a single lucky scheduling run
  // cannot flake it.
  const std::uint64_t base = PropertySeed();
  OverloadDifferentialOptions options;
  options.admission_queue_limit = 4;
  std::size_t total_degraded = 0;
  std::size_t total_sent = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    const WorkloadSpec spec =
        GenerateWorkload(SubSeed(base, "degraded-" + std::to_string(round)),
                         round % NumWorkloadShapes(),
                         /*inject_refit_failures=*/true);
    const OverloadDifferentialReport report =
        RunOverloadDifferential(spec, options);
    ASSERT_TRUE(report.ok) << report.failure << "\n" << ReplayHint(spec.seed);
    total_degraded += report.ok_degraded;
    total_sent += report.queries_sent;
  }
  EXPECT_GT(total_sent, 0u);
  EXPECT_GT(total_degraded, 0u)
      << "no flood ever exercised the degraded path — the overload "
         "differential is not testing what it claims";
}

TEST(OverloadDifferentialTest, HealthyWorkloadsSurviveTheFloodUnchanged) {
  // Without fault injection the models stay valid: answers must be full
  // fidelity (oracle-correct) or honest rejections — never degraded.
  const std::uint64_t base = PropertySeed();
  OverloadDifferentialOptions options;
  options.admission_queue_limit = 2;
  const WorkloadSpec spec = GenerateWorkload(
      SubSeed(base, "healthy-overload"), 0, /*inject_refit_failures=*/false);
  const OverloadDifferentialReport report =
      RunOverloadDifferential(spec, options);
  ASSERT_TRUE(report.ok) << report.failure << "\n" << ReplayHint(spec.seed);
  EXPECT_GT(report.queries_sent, 0u);
}

}  // namespace
}  // namespace f2db::testing
