#include "ts/arima.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "data/sarima_generator.h"
#include "ts/accuracy.h"

namespace f2db {
namespace {

TEST(PacfTransform, Ar1PassThrough) {
  const auto phi = PacfToArCoefficients({0.6});
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 0.6);
}

TEST(PacfTransform, Ar2DurbinLevinson) {
  // pacf (p1, p2) -> phi1 = p1(1 - p2), phi2 = p2.
  const auto phi = PacfToArCoefficients({0.5, -0.3});
  EXPECT_NEAR(phi[0], 0.5 * (1.0 - (-0.3)), 1e-12);
  EXPECT_NEAR(phi[1], -0.3, 1e-12);
}

TEST(PacfTransform, StationarityForExtremePacf) {
  // Any pacf in (-1,1) must give a stationary polynomial; spot-check that
  // the one-step recursion with these coefficients does not explode.
  const auto phi = PacfToArCoefficients({0.95, -0.9, 0.85, -0.8});
  std::vector<double> w(500, 0.0);
  w[0] = 1.0;
  double max_abs = 0.0;
  for (std::size_t t = 1; t < w.size(); ++t) {
    double v = 0.0;
    for (std::size_t i = 1; i <= phi.size() && i <= t; ++i) {
      v += phi[i - 1] * w[t - i];
    }
    w[t] = v;
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_LT(std::abs(w.back()), 1e-3) << "impulse response must decay";
  EXPECT_LT(max_abs, 100.0);
}

TimeSeries SimulateAr1(double phi, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double prev = 0.0;
  for (std::size_t burn = 0; burn < 100; ++burn) {
    prev = phi * prev + rng.NextGaussian();
  }
  for (std::size_t t = 0; t < n; ++t) {
    prev = phi * prev + rng.NextGaussian();
    out[t] = prev + 50.0;
  }
  return TimeSeries(out);
}

TEST(Arima, RecoversAr1Coefficient) {
  ArimaOrder order;
  order.p = 1;
  order.d = 0;
  order.q = 0;
  ArimaModel model(order);
  ASSERT_TRUE(model.Fit(SimulateAr1(0.7, 2000, 11)).ok());
  ASSERT_EQ(model.phi().size(), 1u);
  EXPECT_NEAR(model.phi()[0], 0.7, 0.08);
}

TEST(Arima, RecoversMeanOfDifferencedSeries) {
  // Random walk with drift 2: first difference has mean 2.
  Rng rng(13);
  std::vector<double> series(300);
  double level = 0.0;
  for (double& v : series) {
    level += 2.0 + rng.Gaussian(0.0, 0.1);
    v = level;
  }
  ArimaOrder order;
  order.p = 0;
  order.d = 1;
  order.q = 0;
  ArimaModel model(order);
  ASSERT_TRUE(model.Fit(TimeSeries(series)).ok());
  EXPECT_NEAR(model.mu(), 2.0, 0.05);
  // Forecasts continue the drift.
  const auto f = model.Forecast(5);
  EXPECT_NEAR(f[4] - f[0], 8.0, 0.5);
}

TEST(Arima, ForecastConvergesToMeanForStationaryModel) {
  ArimaOrder order;
  order.p = 1;
  ArimaModel model(order);
  ASSERT_TRUE(model.Fit(SimulateAr1(0.5, 1000, 17)).ok());
  const auto f = model.Forecast(200);
  EXPECT_NEAR(f.back(), 50.0, 1.0);  // long-run forecast ~ series mean
}

TEST(Arima, SeasonalModelTracksSarimaProcess) {
  SarimaProcess process;
  process.order.p = 1;
  process.order.q = 0;
  process.order.sd = 1;
  process.order.season = 12;
  process.phi = {0.5};
  process.noise_stddev = 0.5;
  process.level_offset = 100.0;
  Rng rng(19);
  const TimeSeries series = SimulateSarima(process, 240, rng);
  const auto [train, test] = series.TrainTestSplit(0.9);

  ArimaOrder order;
  order.p = 1;
  order.d = 0;
  order.q = 0;
  order.sd = 1;
  order.sq = 1;
  order.season = 12;
  ArimaModel model(order);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto naive_error =
      Smape(test.values(),
            std::vector<double>(test.size(), train.values().back()));
  const auto model_error = Smape(test.values(), model.Forecast(test.size()));
  EXPECT_LT(model_error, naive_error);
}

TEST(Arima, RejectsSeriesTooShort) {
  ArimaOrder order;
  order.p = 2;
  order.q = 2;
  ArimaModel model(order);
  EXPECT_FALSE(model.Fit(TimeSeries({1, 2, 3, 4, 5})).ok());
}

TEST(Arima, RejectsSeasonalOrdersWithoutSeason) {
  ArimaOrder order;
  order.sp = 1;
  order.season = 1;
  ArimaModel model(order);
  EXPECT_FALSE(
      model.Fit(TimeSeries(std::vector<double>(100, 1.0))).ok());
}

TEST(Arima, RejectsNonFiniteHistory) {
  // A single NaN would silently poison the CSS recursion; Fit must reject
  // the series up front instead of estimating garbage coefficients.
  std::vector<double> values(100, 1.0);
  values[40] = std::numeric_limits<double>::quiet_NaN();
  ArimaModel model(ArimaOrder{});
  const Status status = model.Fit(TimeSeries(values));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(model.is_fitted());
}

TEST(Arima, UpdateAdvancesForecastOrigin) {
  ArimaModel model(ArimaOrder{1, 0, 0, 0, 0, 0, 1});
  const TimeSeries series = SimulateAr1(0.8, 500, 23);
  ASSERT_TRUE(model.Fit(series).ok());
  const double predicted_next = model.Forecast(2)[1];
  model.Update(model.Forecast(1)[0]);
  // After updating with exactly the predicted value, the new one-step
  // forecast equals the old two-step forecast.
  EXPECT_NEAR(model.Forecast(1)[0], predicted_next, 1e-6);
}

TEST(Arima, AicPenalizesExtraParameters) {
  const TimeSeries series = SimulateAr1(0.6, 400, 29);
  ArimaModel small(ArimaOrder{1, 0, 0, 0, 0, 0, 1});
  ArimaModel large(ArimaOrder{3, 0, 3, 0, 0, 0, 1});
  ASSERT_TRUE(small.Fit(series).ok());
  ASSERT_TRUE(large.Fit(series).ok());
  // The true process is AR(1); the bigger model cannot beat it by much and
  // pays the 2k penalty.
  EXPECT_LT(small.aic(), large.aic() + 2.0);
}

TEST(Arima, SaveRestoreRoundTrip) {
  ArimaOrder order;
  order.p = 1;
  order.d = 1;
  order.q = 1;
  ArimaModel model(order);
  const TimeSeries series = SimulateAr1(0.5, 300, 31);
  ASSERT_TRUE(model.Fit(series).ok());
  model.Update(48.0);
  const auto state = model.SaveState();

  ArimaModel restored(ArimaOrder{});
  ASSERT_TRUE(restored.RestoreState(state).ok());
  const auto f1 = model.Forecast(6);
  const auto f2 = restored.Forecast(6);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) EXPECT_NEAR(f1[i], f2[i], 1e-9);

  // Updates continue identically after restore.
  restored.Update(50.0);
  model.Update(50.0);
  EXPECT_NEAR(model.Forecast(1)[0], restored.Forecast(1)[0], 1e-9);
}

TEST(Arima, RestoreRejectsCorruptState) {
  ArimaModel model(ArimaOrder{});
  EXPECT_FALSE(model.RestoreState({}).ok());
  EXPECT_FALSE(model.RestoreState({1, 2, 3}).ok());
}

TEST(Arima, FittedValuesMatchHistoryLength) {
  ArimaModel model(ArimaOrder{1, 1, 1, 0, 0, 0, 1});
  const TimeSeries series = SimulateAr1(0.4, 200, 37);
  ASSERT_TRUE(model.Fit(series).ok());
  EXPECT_EQ(model.FittedValues().size(), series.size());
}

class ArimaOrderSweep : public ::testing::TestWithParam<ArimaOrder> {};

TEST_P(ArimaOrderSweep, FitsAndForecastsFinite) {
  ArimaModel model(GetParam());
  const TimeSeries series = SimulateAr1(0.6, 400, 41);
  ASSERT_TRUE(model.Fit(series).ok());
  for (double v : model.Forecast(24)) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ArimaOrderSweep,
    ::testing::Values(ArimaOrder{0, 0, 1, 0, 0, 0, 1},
                      ArimaOrder{1, 0, 1, 0, 0, 0, 1},
                      ArimaOrder{2, 0, 0, 0, 0, 0, 1},
                      ArimaOrder{1, 1, 1, 0, 0, 0, 1},
                      ArimaOrder{2, 1, 2, 0, 0, 0, 1},
                      ArimaOrder{1, 0, 0, 1, 0, 0, 12},
                      ArimaOrder{0, 1, 1, 0, 1, 1, 12},
                      ArimaOrder{1, 2, 1, 0, 0, 0, 1}));

}  // namespace
}  // namespace f2db
