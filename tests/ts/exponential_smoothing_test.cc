#include "ts/exponential_smoothing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ts/accuracy.h"

namespace f2db {
namespace {

std::vector<double> SeasonalTrendSeries(std::size_t n, std::size_t period,
                                        double noise_sd, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = 100.0 + 0.5 * static_cast<double>(t) +
             20.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                             static_cast<double>(period)) +
             (noise_sd > 0 ? rng.Gaussian(0.0, noise_sd) : 0.0);
  }
  return out;
}

TEST(Ses, ConstantSeriesForecastsConstant) {
  auto model = ExponentialSmoothingModel::Ses();
  ASSERT_TRUE(model->Fit(TimeSeries(std::vector<double>(20, 5.0))).ok());
  for (double v : model->Forecast(5)) EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(Ses, FlatForecastShape) {
  auto model = ExponentialSmoothingModel::Ses();
  ASSERT_TRUE(
      model->Fit(TimeSeries(SeasonalTrendSeries(40, 12, 1.0, 1))).ok());
  const auto f = model->Forecast(5);
  for (std::size_t h = 1; h < f.size(); ++h) {
    EXPECT_DOUBLE_EQ(f[h], f[0]);  // SES forecasts are flat
  }
}

TEST(Holt, CapturesLinearTrend) {
  std::vector<double> series(30);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = 10.0 + 2.0 * static_cast<double>(t);
  }
  auto model = ExponentialSmoothingModel::Holt();
  ASSERT_TRUE(model->Fit(TimeSeries(series)).ok());
  const auto f = model->Forecast(3);
  EXPECT_NEAR(f[0], 70.0, 1.0);
  EXPECT_NEAR(f[2], 74.0, 1.5);
}

TEST(Holt, DampedTrendFlattens) {
  std::vector<double> series(30);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = 10.0 + 2.0 * static_cast<double>(t);
  }
  auto damped = ExponentialSmoothingModel::Holt(/*damped=*/true);
  ASSERT_TRUE(damped->Fit(TimeSeries(series)).ok());
  const auto f = damped->Forecast(50);
  // Damped increments shrink: late steps grow slower than early steps.
  const double early_step = f[1] - f[0];
  const double late_step = f[49] - f[48];
  EXPECT_LT(late_step, early_step + 1e-9);
  EXPECT_EQ(damped->num_parameters(), 3u);  // alpha, beta, phi
}

TEST(HoltWinters, AdditiveTracksSeasonalSeries) {
  const auto series = SeasonalTrendSeries(72, 12, 0.5, 2);
  TimeSeries ts(series);
  const auto [train, test] = ts.TrainTestSplit(0.8);
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(12);
  ASSERT_TRUE(model->Fit(train).ok());
  const double error = Smape(test.values(), model->Forecast(test.size()));
  EXPECT_LT(error, 0.03);
}

TEST(HoltWinters, MultiplicativeTracksMultiplicativeSeasonality) {
  Rng rng(3);
  std::vector<double> series(72);
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double base = 50.0 + static_cast<double>(t);
    const double season =
        1.0 + 0.4 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0);
    series[t] = base * season * (1.0 + rng.Gaussian(0.0, 0.01));
  }
  TimeSeries ts(series);
  const auto [train, test] = ts.TrainTestSplit(0.8);
  auto model = ExponentialSmoothingModel::HoltWintersMultiplicative(12);
  ASSERT_TRUE(model->Fit(train).ok());
  const double error = Smape(test.values(), model->Forecast(test.size()));
  EXPECT_LT(error, 0.05);
}

TEST(HoltWinters, BeatsSesOnSeasonalData) {
  const auto series = SeasonalTrendSeries(60, 12, 1.0, 4);
  TimeSeries ts(series);
  const auto [train, test] = ts.TrainTestSplit(0.8);
  auto hw = ExponentialSmoothingModel::HoltWintersAdditive(12);
  auto ses = ExponentialSmoothingModel::Ses();
  ASSERT_TRUE(hw->Fit(train).ok());
  ASSERT_TRUE(ses->Fit(train).ok());
  EXPECT_LT(Smape(test.values(), hw->Forecast(test.size())),
            Smape(test.values(), ses->Forecast(test.size())));
}

TEST(HoltWinters, UpdateMatchesRefitRecursion) {
  // Feeding values one at a time through Update must advance the state the
  // same way the in-fit recursion would (same parameters).
  const auto series = SeasonalTrendSeries(48, 12, 0.0, 5);
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(12);
  ASSERT_TRUE(model->Fit(TimeSeries(series)).ok());
  auto clone = model->Clone();

  const std::vector<double> predicted = model->Forecast(3);
  // Apply the actual next values; forecasts after the update must differ in
  // a consistent way (state advanced by exactly one step each).
  clone->Update(predicted[0]);
  const std::vector<double> after = clone->Forecast(2);
  EXPECT_NEAR(after[0], predicted[1], 1.0);
  EXPECT_NEAR(after[1], predicted[2], 1.0);
}

TEST(HoltWinters, RejectsTooShortSeries) {
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(12);
  EXPECT_FALSE(model->Fit(TimeSeries(std::vector<double>(10, 1.0))).ok());
}

TEST(HoltWinters, RejectsPeriodOne) {
  EtsSpec spec;
  spec.trend = true;
  spec.seasonal = true;
  spec.period = 1;
  ExponentialSmoothingModel model(spec);
  EXPECT_FALSE(model.Fit(TimeSeries(std::vector<double>(30, 1.0))).ok());
}

TEST(Ets, TypeDerivedFromSpec) {
  EXPECT_EQ(ExponentialSmoothingModel::Ses()->type(), ModelType::kSes);
  EXPECT_EQ(ExponentialSmoothingModel::Holt()->type(), ModelType::kHolt);
  EXPECT_EQ(ExponentialSmoothingModel::HoltWintersAdditive(4)->type(),
            ModelType::kHoltWintersAdd);
  EXPECT_EQ(ExponentialSmoothingModel::HoltWintersMultiplicative(4)->type(),
            ModelType::kHoltWintersMul);
}

TEST(Ets, ParametersWithinBounds) {
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(12);
  ASSERT_TRUE(
      model->Fit(TimeSeries(SeasonalTrendSeries(60, 12, 2.0, 6))).ok());
  for (double p : model->parameters()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Ets, FittedValuesLengthMatchesHistory) {
  auto model = ExponentialSmoothingModel::Ses();
  ASSERT_TRUE(
      model->Fit(TimeSeries(SeasonalTrendSeries(30, 12, 1.0, 7))).ok());
  EXPECT_EQ(model->FittedValues().size(), 30u);
}

TEST(Ets, SaveRestoreRoundTrip) {
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(6);
  ASSERT_TRUE(
      model->Fit(TimeSeries(SeasonalTrendSeries(48, 6, 0.5, 8))).ok());
  model->Update(123.0);
  const auto state = model->SaveState();

  auto restored = ExponentialSmoothingModel::Ses();  // spec overwritten
  ASSERT_TRUE(restored->RestoreState(state).ok());
  EXPECT_EQ(restored->Forecast(12), model->Forecast(12));
  EXPECT_EQ(restored->type(), model->type());
}

TEST(Ets, RestoreRejectsBadState) {
  auto model = ExponentialSmoothingModel::Ses();
  EXPECT_FALSE(model->RestoreState({1, 2, 3}).ok());
  // Seasonal flag set but season values missing.
  std::vector<double> bad{1, 0, 1, 0, 4, 0.5, 0.1, 0.1, 1.0, 0.0, 0.0};
  EXPECT_FALSE(model->RestoreState(bad).ok());
}

TEST(Ets, OptimizerVariantsAllFit) {
  const auto series = SeasonalTrendSeries(48, 12, 1.0, 9);
  for (EtsOptimizer optimizer :
       {EtsOptimizer::kNelderMead, EtsOptimizer::kHillClimb,
        EtsOptimizer::kSimulatedAnnealing}) {
    EtsSpec spec;
    spec.trend = true;
    spec.seasonal = true;
    spec.period = 12;
    ExponentialSmoothingModel model(spec, optimizer);
    ASSERT_TRUE(model.Fit(TimeSeries(series)).ok());
    const double error = Smape(series, model.FittedValues());
    EXPECT_LT(error, 0.1);
  }
}

}  // namespace
}  // namespace f2db
