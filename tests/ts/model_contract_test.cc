// Model contract sweep: every concrete model family must uphold the
// ForecastModel interface contract on every series shape — fit cleanly or
// fail with a Status (never crash), produce finite forecasts, survive
// serialization, clone independently, and keep variances monotone.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "ts/history_selection.h"
#include "ts/model_factory.h"

namespace f2db {
namespace {

enum class SeriesKind {
  kConstant,
  kTrend,
  kSeasonal,
  kNoisy,
  kShort,
  kTiny,
  kLargeScale,
};

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kConstant:
      return "constant";
    case SeriesKind::kTrend:
      return "trend";
    case SeriesKind::kSeasonal:
      return "seasonal";
    case SeriesKind::kNoisy:
      return "noisy";
    case SeriesKind::kShort:
      return "short";
    case SeriesKind::kTiny:
      return "tiny";
    case SeriesKind::kLargeScale:
      return "largescale";
  }
  return "?";
}

TimeSeries MakeSeries(SeriesKind kind) {
  Rng rng(99);
  switch (kind) {
    case SeriesKind::kConstant:
      return TimeSeries(std::vector<double>(60, 7.5));
    case SeriesKind::kTrend: {
      std::vector<double> out(60);
      for (std::size_t t = 0; t < out.size(); ++t) {
        out[t] = 5.0 + 1.2 * static_cast<double>(t);
      }
      return TimeSeries(out);
    }
    case SeriesKind::kSeasonal: {
      std::vector<double> out(72);
      for (std::size_t t = 0; t < out.size(); ++t) {
        out[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * t / 12.0) +
                 rng.Gaussian(0.0, 0.5);
      }
      return TimeSeries(out);
    }
    case SeriesKind::kNoisy: {
      std::vector<double> out(60);
      for (double& v : out) v = 20.0 + rng.Gaussian(0.0, 8.0);
      return TimeSeries(out);
    }
    case SeriesKind::kShort:
      return TimeSeries({3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
    case SeriesKind::kTiny:
      return TimeSeries({1.0, 2.0});
    case SeriesKind::kLargeScale: {
      std::vector<double> out(60);
      for (std::size_t t = 0; t < out.size(); ++t) {
        out[t] = 1e9 + 1e7 * std::sin(2.0 * M_PI * t / 12.0) +
                 rng.Gaussian(0.0, 1e6);
      }
      return TimeSeries(out);
    }
  }
  return TimeSeries();
}

using ContractCase = std::tuple<ModelType, SeriesKind>;

class ModelContract : public ::testing::TestWithParam<ContractCase> {};

TEST_P(ModelContract, FitForecastSerializeCloneUpdate) {
  const auto [type, kind] = GetParam();
  ModelSpec spec;
  spec.type = type;
  spec.period = 12;
  if (type == ModelType::kArima) spec.arima = ArimaOrder{1, 0, 1, 0, 0, 0, 1};
  ModelFactory factory(spec);
  const TimeSeries series = MakeSeries(kind);

  auto fitted = factory.CreateAndFit(series);
  if (!fitted.ok()) {
    // Clean rejection is an acceptable contract outcome (short series etc.).
    EXPECT_FALSE(fitted.status().message().empty());
    return;
  }
  ForecastModel& model = *fitted.value();
  EXPECT_TRUE(model.is_fitted());

  // Forecasts are finite at several horizons.
  for (const std::size_t horizon : {1u, 7u, 30u}) {
    const auto f = model.Forecast(horizon);
    ASSERT_EQ(f.size(), horizon);
    for (double v : f) EXPECT_TRUE(std::isfinite(v)) << SeriesKindName(kind);
  }

  // Variances (when provided) are finite, non-negative, monotone.
  const auto var = model.ForecastVariance(12);
  if (!var.empty()) {
    ASSERT_EQ(var.size(), 12u);
    for (std::size_t h = 0; h < var.size(); ++h) {
      EXPECT_TRUE(std::isfinite(var[h]));
      EXPECT_GE(var[h], 0.0);
      if (h > 0) {
        EXPECT_GE(var[h] + 1e-9, var[h - 1]);
      }
    }
  }

  // Serialization round trip preserves forecasts.
  const std::string payload = ModelFactory::SerializeModel(model);
  auto restored = ModelFactory::DeserializeModel(payload);
  ASSERT_TRUE(restored.ok()) << payload.substr(0, 40);
  const auto f1 = model.Forecast(6);
  const auto f2 = restored.value()->Forecast(6);
  for (std::size_t h = 0; h < 6; ++h) {
    EXPECT_NEAR(f1[h], f2[h], 1e-6 * (1.0 + std::abs(f1[h])));
  }

  // Clones evolve independently.
  auto clone = model.Clone();
  model.Update(series[series.size() - 1] * 2.0 + 1.0);
  const auto clone_forecast = clone->Forecast(1);
  EXPECT_TRUE(std::isfinite(clone_forecast[0]));

  // Updates keep forecasts finite.
  for (int i = 0; i < 5; ++i) model.Update(series[i % series.size()]);
  for (double v : model.Forecast(4)) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllShapes, ModelContract,
    ::testing::Combine(
        ::testing::Values(ModelType::kMean, ModelType::kNaive,
                          ModelType::kSeasonalNaive, ModelType::kDrift,
                          ModelType::kSes, ModelType::kHolt,
                          ModelType::kHoltWintersAdd,
                          ModelType::kHoltWintersMul, ModelType::kArima,
                          ModelType::kTheta),
        ::testing::Values(SeriesKind::kConstant, SeriesKind::kTrend,
                          SeriesKind::kSeasonal, SeriesKind::kNoisy,
                          SeriesKind::kShort, SeriesKind::kTiny,
                          SeriesKind::kLargeScale)),
    [](const auto& info) {
      return std::string(ModelTypeName(std::get<0>(info.param))) + "_" +
             SeriesKindName(std::get<1>(info.param));
    });

// ------------------------------------------------------- history selection

TEST(HistorySelection, PrefersRecentWindowAfterLevelShift) {
  // Level jumps at t = 60: training on the full history biases the mean
  // model badly, the recent window wins.
  std::vector<double> xs(120);
  Rng rng(5);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    xs[t] = (t < 60 ? 10.0 : 100.0) + rng.Gaussian(0.0, 1.0);
  }
  ModelFactory factory(ModelSpec{ModelType::kMean, 1, {}});
  auto selection = SelectHistoryLength(TimeSeries(xs), factory);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_LE(selection.value().length, 60u);
  EXPECT_LT(selection.value().validation_smape, 0.1);
  EXPECT_GT(selection.value().candidates_tried, 1u);
}

TEST(HistorySelection, StationarySeriesKeepsLongWindow) {
  std::vector<double> xs(128);
  Rng rng(6);
  for (double& v : xs) v = 50.0 + rng.Gaussian(0.0, 2.0);
  ModelFactory factory(ModelSpec{ModelType::kMean, 1, {}});
  auto selection = SelectHistoryLength(TimeSeries(xs), factory);
  ASSERT_TRUE(selection.ok());
  // Longer windows average noise better; expect at least half the history.
  EXPECT_GE(selection.value().length, 64u);
}

TEST(HistorySelection, Validation) {
  ModelFactory factory(ModelSpec{ModelType::kMean, 1, {}});
  EXPECT_FALSE(
      SelectHistoryLength(TimeSeries({1, 2, 3}), factory).ok());
  HistorySelectionOptions bad;
  bad.validation_length = 0;
  EXPECT_FALSE(SelectHistoryLength(TimeSeries(std::vector<double>(100, 1.0)),
                                   factory, bad)
                   .ok());
}

TEST(HistorySelection, ExplicitCandidates) {
  std::vector<double> xs(100);
  Rng rng(7);
  for (double& v : xs) v = 10.0 + rng.Gaussian(0.0, 1.0);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  HistorySelectionOptions options;
  options.candidate_lengths = {100, 40};
  auto selection = SelectHistoryLength(TimeSeries(xs), factory, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().length == 100 ||
              selection.value().length == 40);
  EXPECT_EQ(selection.value().candidates_tried, 2u);
}

}  // namespace
}  // namespace f2db
