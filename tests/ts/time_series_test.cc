#include "ts/time_series.h"

#include <gtest/gtest.h>

#include <limits>

namespace f2db {
namespace {

TEST(TimeSeries, EmptyDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.start_time(), 0);
  EXPECT_EQ(ts.end_time(), 0);
  EXPECT_DOUBLE_EQ(ts.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 0.0);
}

TEST(TimeSeries, BasicAccessors) {
  TimeSeries ts({1, 2, 3}, 10);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.start_time(), 10);
  EXPECT_EQ(ts.end_time(), 13);
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
  EXPECT_DOUBLE_EQ(ts.AtTime(12), 3.0);
  EXPECT_DOUBLE_EQ(ts.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 2.0);
}

TEST(TimeSeries, AppendExtendsEndTime) {
  TimeSeries ts({1}, 5);
  ts.Append(2);
  EXPECT_EQ(ts.end_time(), 7);
  EXPECT_DOUBLE_EQ(ts.AtTime(6), 2.0);
}

TEST(TimeSeries, SliceKeepsTimeAxis) {
  TimeSeries ts({0, 1, 2, 3, 4}, 100);
  const TimeSeries mid = ts.Slice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.start_time(), 101);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
}

TEST(TimeSeries, SliceClampsCount) {
  TimeSeries ts({0, 1, 2}, 0);
  EXPECT_EQ(ts.Slice(2, 100).size(), 1u);
  EXPECT_EQ(ts.Slice(3, 1).size(), 0u);
}

TEST(TimeSeries, HeadTail) {
  TimeSeries ts({0, 1, 2, 3}, 0);
  EXPECT_EQ(ts.Head(2).size(), 2u);
  EXPECT_DOUBLE_EQ(ts.Head(2)[1], 1.0);
  const TimeSeries tail = ts.Tail(2);
  EXPECT_DOUBLE_EQ(tail[0], 2.0);
  EXPECT_EQ(tail.start_time(), 2);
  EXPECT_EQ(ts.Tail(100).size(), 4u);
}

TEST(TimeSeries, TrainTestSplitFractions) {
  TimeSeries ts(std::vector<double>(10, 1.0), 0);
  const auto [train, test] = ts.TrainTestSplit(0.8);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_EQ(test.start_time(), 8);
}

TEST(TimeSeries, TrainTestSplitAlwaysNonEmptyPartsWhenPossible) {
  TimeSeries ts({1, 2}, 0);
  const auto [train0, test0] = ts.TrainTestSplit(0.0);
  EXPECT_EQ(train0.size(), 1u);
  EXPECT_EQ(test0.size(), 1u);
  const auto [train1, test1] = ts.TrainTestSplit(1.0);
  EXPECT_EQ(train1.size(), 1u);
  EXPECT_EQ(test1.size(), 1u);
}

TEST(TimeSeries, SumOfAlignedSeries) {
  TimeSeries a({1, 2}, 0), b({10, 20}, 0);
  auto sum = TimeSeries::SumOf({&a, &b});
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value()[0], 11.0);
  EXPECT_DOUBLE_EQ(sum.value()[1], 22.0);
}

TEST(TimeSeries, SumOfRejectsMisaligned) {
  TimeSeries a({1, 2}, 0), b({10, 20}, 1);
  EXPECT_FALSE(TimeSeries::SumOf({&a, &b}).ok());
  TimeSeries c({1}, 0);
  EXPECT_FALSE(TimeSeries::SumOf({&a, &c}).ok());
  EXPECT_FALSE(TimeSeries::SumOf({}).ok());
}

TEST(TimeSeries, AddInPlace) {
  TimeSeries a({1, 2}, 0), b({3, 4}, 0);
  ASSERT_TRUE(a.AddInPlace(b).ok());
  EXPECT_DOUBLE_EQ(a[0], 4.0);
  EXPECT_DOUBLE_EQ(a[1], 6.0);
}

TEST(TimeSeries, ToStringTruncatesLongSeries) {
  TimeSeries ts(std::vector<double>(20, 1.0), 0);
  EXPECT_NE(ts.ToString().find("..."), std::string::npos);
}

TEST(TimeSeries, CreateAcceptsFiniteValues) {
  auto ts = TimeSeries::Create({1.0, -2.5, 0.0}, 5);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value().size(), 3u);
  EXPECT_EQ(ts.value().start_time(), 5);
}

TEST(TimeSeries, CreateRejectsNonFiniteValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto with_nan = TimeSeries::Create({1.0, nan, 3.0});
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending index.
  EXPECT_NE(with_nan.status().message().find("index 1"), std::string::npos);
  EXPECT_FALSE(TimeSeries::Create({inf}).ok());
  EXPECT_FALSE(TimeSeries::Create({-inf, 0.0}).ok());
}

TEST(TimeSeries, ValidateFiniteFlagsPoisonedSeries) {
  TimeSeries clean({1.0, 2.0}, 0);
  EXPECT_TRUE(clean.ValidateFinite().ok());
  TimeSeries dirty({1.0, std::numeric_limits<double>::quiet_NaN()}, 0);
  EXPECT_EQ(dirty.ValidateFinite().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace f2db
