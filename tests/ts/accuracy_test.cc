#include "ts/accuracy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace f2db {
namespace {

TEST(Smape, PerfectForecastIsZero) {
  EXPECT_DOUBLE_EQ(Smape({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Smape, BoundedByOne) {
  // Opposite-sign or totally-off forecasts max out each term at 1.
  EXPECT_DOUBLE_EQ(Smape({1, 1}, {0, 0}), 1.0);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(10), f(10);
    for (int i = 0; i < 10; ++i) {
      a[i] = rng.Uniform(0, 100);
      f[i] = rng.Uniform(0, 100);
    }
    const double value = Smape(a, f);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Smape, MatchesEquation4) {
  // |x - xhat| / (x + xhat) for positive values, averaged.
  const double expected = (std::abs(10.0 - 8.0) / 18.0 +
                           std::abs(20.0 - 25.0) / 45.0) /
                          2.0;
  EXPECT_NEAR(Smape({10, 20}, {8, 25}), expected, 1e-12);
}

TEST(Smape, BothZeroContributesZero) {
  EXPECT_DOUBLE_EQ(Smape({0, 10}, {0, 10}), 0.0);
}

TEST(Smape, MismatchedOrEmptyIsWorstCase) {
  EXPECT_DOUBLE_EQ(Smape({1, 2}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(Smape({}, {}), 1.0);
}

TEST(Smape, ScaleIndependent) {
  const std::vector<double> a{10, 20, 30};
  const std::vector<double> f{12, 18, 33};
  std::vector<double> a_scaled, f_scaled;
  for (double v : a) a_scaled.push_back(v * 1000);
  for (double v : f) f_scaled.push_back(v * 1000);
  EXPECT_NEAR(Smape(a, f), Smape(a_scaled, f_scaled), 1e-12);
}

TEST(Mae, Basic) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {2, 4}), 1.5);
  EXPECT_TRUE(std::isinf(MeanAbsoluteError({1}, {})));
}

TEST(Rmse, Basic) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({5}, {5}), 0.0);
}

TEST(Mape, SkipsZeroActuals) {
  // Only the second term counts: |10-5|/10 = 0.5.
  EXPECT_DOUBLE_EQ(Mape({0, 10}, {99, 5}), 0.5);
  EXPECT_TRUE(std::isinf(Mape({0, 0}, {1, 1})));
}

TEST(Mase, ScaledByNaiveError) {
  // Train naive MAE = 1 (steps of 1). Forecast MAE = 2 -> MASE 2.
  EXPECT_DOUBLE_EQ(Mase({1, 2, 3, 4}, {5, 6}, {7, 8}), 2.0);
}

TEST(Mase, InfiniteForConstantTrain) {
  EXPECT_TRUE(std::isinf(Mase({5, 5, 5}, {5}, {6})));
  EXPECT_TRUE(std::isinf(Mase({5}, {5}, {6})));
}

TEST(Accuracy, RmseAtLeastMae) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(20), f(20);
    for (int i = 0; i < 20; ++i) {
      a[i] = rng.Uniform(0, 10);
      f[i] = rng.Uniform(0, 10);
    }
    EXPECT_GE(RootMeanSquaredError(a, f) + 1e-12, MeanAbsoluteError(a, f));
  }
}

}  // namespace
}  // namespace f2db
