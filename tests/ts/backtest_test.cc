#include "ts/backtest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace f2db {
namespace {

TimeSeries DriftingSeries(std::size_t n, std::uint64_t seed,
                          double drift_change_at = -1.0) {
  Rng rng(seed);
  std::vector<double> out(n);
  double level = 100.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double drift =
        (drift_change_at >= 0 && static_cast<double>(t) > drift_change_at)
            ? 3.0
            : 0.5;
    level += drift + rng.Gaussian(0.0, 0.5);
    out[t] = level;
  }
  return TimeSeries(out);
}

TEST(Backtest, RollingOriginScoresEveryOrigin) {
  const TimeSeries series = DriftingSeries(60, 1);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  BacktestOptions options;
  options.min_train = 20;
  options.horizon = 1;
  auto result = RollingOriginBacktest(series, factory, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().origins, 40u);
  EXPECT_EQ(result.value().per_origin_smape.size(), 40u);
  EXPECT_GT(result.value().rmse, 0.0);
  EXPECT_GE(result.value().rmse, result.value().mae);
  EXPECT_LT(result.value().smape, 0.1);
}

TEST(Backtest, StrideReducesOrigins) {
  const TimeSeries series = DriftingSeries(60, 2);
  ModelFactory factory(ModelSpec{ModelType::kNaive, 1, {}});
  BacktestOptions options;
  options.min_train = 20;
  options.stride = 5;
  auto result = RollingOriginBacktest(series, factory, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().origins, 8u);
}

TEST(Backtest, MultiStepHorizonHarder) {
  const TimeSeries series = DriftingSeries(80, 3);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  BacktestOptions one;
  one.min_train = 30;
  one.horizon = 1;
  BacktestOptions five;
  five.min_train = 30;
  five.horizon = 5;
  auto r1 = RollingOriginBacktest(series, factory, one);
  auto r5 = RollingOriginBacktest(series, factory, five);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r5.ok());
  EXPECT_GT(r5.value().rmse, r1.value().rmse);
}

TEST(Backtest, IncrementalMatchesRollingForStableSeries) {
  // Stationary-drift series: frozen parameters stay adequate, so the
  // incremental path is close to refitting.
  const TimeSeries series = DriftingSeries(80, 4);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  BacktestOptions options;
  options.min_train = 30;
  auto rolling = RollingOriginBacktest(series, factory, options);
  auto incremental = IncrementalBacktest(series, factory, options);
  ASSERT_TRUE(rolling.ok());
  ASSERT_TRUE(incremental.ok());
  EXPECT_NEAR(incremental.value().smape, rolling.value().smape, 0.02);
}

TEST(Backtest, RefitWinsAfterRegimeChange) {
  // The drift jumps mid-series. ARIMA(0,1,0) estimates the drift mu as a
  // PARAMETER at Fit time: refitting adapts it, the frozen incremental
  // model keeps forecasting the old drift — quantifying the paper's
  // motivation for parameter re-estimation in maintenance. (DriftModel
  // itself would not show this: its slope is state, not a parameter.)
  const TimeSeries series = DriftingSeries(120, 5, /*drift_change_at=*/60);
  ModelFactory factory(ModelSpec::Arima(ArimaOrder{0, 1, 0, 0, 0, 0, 1}));
  BacktestOptions options;
  options.min_train = 40;
  options.horizon = 4;
  auto rolling = RollingOriginBacktest(series, factory, options);
  auto incremental = IncrementalBacktest(series, factory, options);
  ASSERT_TRUE(rolling.ok());
  ASSERT_TRUE(incremental.ok());
  EXPECT_LT(rolling.value().smape, incremental.value().smape);
}

TEST(Backtest, ValidatesProtocol) {
  const TimeSeries series = DriftingSeries(20, 6);
  ModelFactory factory(ModelSpec{ModelType::kSes, 1, {}});
  BacktestOptions bad;
  bad.min_train = 25;
  EXPECT_FALSE(RollingOriginBacktest(series, factory, bad).ok());
  bad.min_train = 5;
  bad.horizon = 0;
  EXPECT_FALSE(RollingOriginBacktest(series, factory, bad).ok());
  bad.horizon = 1;
  bad.stride = 0;
  EXPECT_FALSE(IncrementalBacktest(series, factory, bad).ok());
}

}  // namespace
}  // namespace f2db
