#include "ts/model_factory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stopwatch.h"
#include "ts/auto_select.h"

namespace f2db {
namespace {

TimeSeries SeasonalSeries(std::size_t n = 60, std::size_t period = 12) {
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = 50.0 + 0.3 * static_cast<double>(t) +
             8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                            static_cast<double>(period));
  }
  return TimeSeries(out);
}

TEST(ModelFactory, CreatesUnfittedModelOfSpec) {
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  auto model = factory.Create();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value()->type(), ModelType::kHoltWintersAdd);
  EXPECT_FALSE(model.value()->is_fitted());
}

TEST(ModelFactory, CreateAndFitFitsModel) {
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  auto model = factory.CreateAndFit(SeasonalSeries());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value()->is_fitted());
}

TEST(ModelFactory, AutoSpecSelectsSomething) {
  ModelFactory factory(ModelSpec::Auto(12));
  EXPECT_FALSE(factory.Create().ok());  // auto needs data
  auto model = factory.CreateAndFit(SeasonalSeries());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value()->is_fitted());
}

TEST(ModelFactory, ArimaSpec) {
  ArimaOrder order;
  order.p = 1;
  order.d = 1;
  ModelFactory factory(ModelSpec::Arima(order));
  auto model = factory.CreateAndFit(SeasonalSeries());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value()->type(), ModelType::kArima);
}

TEST(ModelFactory, ArtificialDelayIsApplied) {
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  factory.set_artificial_delay_seconds(0.05);
  StopWatch watch;
  auto model = factory.CreateAndFit(SeasonalSeries());
  ASSERT_TRUE(model.ok());
  EXPECT_GE(watch.ElapsedSeconds(), 0.05);
}

TEST(ModelFactory, NegativeDelayClampedToZero) {
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  factory.set_artificial_delay_seconds(-5.0);
  EXPECT_DOUBLE_EQ(factory.artificial_delay_seconds(), 0.0);
}

// Serialization round trip across every concrete model family.
class SerializationSweep : public ::testing::TestWithParam<ModelType> {};

TEST_P(SerializationSweep, SerializeDeserializeForecastsMatch) {
  ModelSpec spec;
  spec.type = GetParam();
  spec.period = 12;
  if (GetParam() == ModelType::kArima) {
    spec.arima = ArimaOrder{1, 0, 1, 0, 0, 0, 1};
  }
  ModelFactory factory(spec);
  auto model = factory.CreateAndFit(SeasonalSeries());
  ASSERT_TRUE(model.ok());

  const std::string text = ModelFactory::SerializeModel(*model.value());
  auto restored = ModelFactory::DeserializeModel(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->type(), GetParam());

  const auto f1 = model.value()->Forecast(8);
  const auto f2 = restored.value()->Forecast(8);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 1e-9) << ModelTypeName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelTypes, SerializationSweep,
    ::testing::Values(ModelType::kMean, ModelType::kNaive,
                      ModelType::kSeasonalNaive, ModelType::kDrift,
                      ModelType::kSes, ModelType::kHolt,
                      ModelType::kHoltWintersAdd, ModelType::kHoltWintersMul,
                      ModelType::kArima),
    [](const auto& info) { return ModelTypeName(info.param); });

TEST(ModelFactory, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ModelFactory::DeserializeModel("").ok());
  EXPECT_FALSE(ModelFactory::DeserializeModel("nosuchmodel;1;2").ok());
  EXPECT_FALSE(ModelFactory::DeserializeModel("mean;abc").ok());
  EXPECT_FALSE(ModelFactory::DeserializeModel("mean;1").ok());  // bad size
}

TEST(ModelTypeName, RoundTripsThroughParse) {
  for (ModelType type :
       {ModelType::kMean, ModelType::kSes, ModelType::kArima,
        ModelType::kHoltWintersMul, ModelType::kAuto}) {
    auto parsed = ParseModelType(ModelTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), type);
  }
  EXPECT_FALSE(ParseModelType("bogus").ok());
}

TEST(AutoSelect, PrefersSeasonalModelOnSeasonalData) {
  AutoSelectOptions options;
  options.period = 12;
  auto selection = AutoSelectModel(SeasonalSeries(96), options);
  ASSERT_TRUE(selection.ok());
  // The winner must handle seasonality (HW, seasonal naive, or sARIMA).
  const ModelType t = selection.value().chosen_type;
  EXPECT_TRUE(t == ModelType::kHoltWintersAdd ||
              t == ModelType::kHoltWintersMul ||
              t == ModelType::kSeasonalNaive || t == ModelType::kArima)
      << ModelTypeName(t);
  EXPECT_LT(selection.value().holdout_smape, 0.1);
}

TEST(AutoSelect, WorksWithoutSeasonHint) {
  std::vector<double> trend(40);
  for (std::size_t i = 0; i < trend.size(); ++i) {
    trend[i] = 2.0 * static_cast<double>(i) + 5.0;
  }
  auto selection = AutoSelectModel(TimeSeries(trend));
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().model->is_fitted());
}

TEST(AutoSelect, RejectsTinySeries) {
  EXPECT_FALSE(AutoSelectModel(TimeSeries({1, 2})).ok());
}

}  // namespace
}  // namespace f2db
