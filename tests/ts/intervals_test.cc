#include "ts/intervals.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ts/arima.h"
#include "ts/exponential_smoothing.h"
#include "ts/model_factory.h"
#include "ts/naive_models.h"

namespace f2db {
namespace {

TimeSeries NoisySeries(std::size_t n, double sd, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = 100.0 + rng.Gaussian(0.0, sd);
  }
  return TimeSeries(out);
}

TEST(Intervals, FromMomentsSymmetricAroundPoint) {
  auto r = IntervalsFromMoments({10.0, 20.0}, {4.0, 9.0}, 0.95);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value()[0].point, 10.0, 1e-12);
  EXPECT_NEAR(r.value()[0].upper - r.value()[0].point, 1.959964 * 2.0, 1e-3);
  EXPECT_NEAR(r.value()[0].point - r.value()[0].lower, 1.959964 * 2.0, 1e-3);
  EXPECT_NEAR(r.value()[1].upper - r.value()[1].lower, 2 * 1.959964 * 3.0,
              1e-3);
}

TEST(Intervals, RejectsBadConfidenceAndSizes) {
  EXPECT_FALSE(IntervalsFromMoments({1.0}, {1.0}, 0.0).ok());
  EXPECT_FALSE(IntervalsFromMoments({1.0}, {1.0}, 1.0).ok());
  EXPECT_FALSE(IntervalsFromMoments({1.0}, {1.0, 2.0}, 0.9).ok());
}

TEST(Intervals, HigherConfidenceWiderBand) {
  MeanModel model;
  ASSERT_TRUE(model.Fit(NoisySeries(100, 5.0, 1)).ok());
  auto narrow = ForecastWithIntervals(model, 1, 0.5);
  auto wide = ForecastWithIntervals(model, 1, 0.99);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT(narrow.value()[0].upper - narrow.value()[0].lower,
            wide.value()[0].upper - wide.value()[0].lower);
}

TEST(Intervals, UnfittedModelRejected) {
  MeanModel model;
  EXPECT_FALSE(ForecastWithIntervals(model, 3).ok());
}

TEST(Intervals, NaiveVarianceGrowsLinearly) {
  NaiveModel model;
  ASSERT_TRUE(model.Fit(NoisySeries(200, 2.0, 2)).ok());
  const auto var = model.ForecastVariance(4);
  ASSERT_EQ(var.size(), 4u);
  EXPECT_NEAR(var[1] / var[0], 2.0, 1e-9);
  EXPECT_NEAR(var[3] / var[0], 4.0, 1e-9);
}

TEST(Intervals, SeasonalNaiveVarianceStepsPerCycle) {
  SeasonalNaiveModel model(4);
  ASSERT_TRUE(model.Fit(NoisySeries(60, 2.0, 3)).ok());
  const auto var = model.ForecastVariance(9);
  EXPECT_DOUBLE_EQ(var[0], var[3]);  // same first cycle
  EXPECT_NEAR(var[4] / var[0], 2.0, 1e-9);
  EXPECT_NEAR(var[8] / var[0], 3.0, 1e-9);
}

TEST(Intervals, SesVarianceFormula) {
  auto model = ExponentialSmoothingModel::Ses();
  ASSERT_TRUE(model->Fit(NoisySeries(200, 3.0, 4)).ok());
  const double alpha = model->alpha();
  const double sigma2 = model->residual_variance();
  const auto var = model->ForecastVariance(3);
  EXPECT_NEAR(var[0], sigma2, 1e-9);
  EXPECT_NEAR(var[1], sigma2 * (1.0 + alpha * alpha), 1e-9);
  EXPECT_NEAR(var[2], sigma2 * (1.0 + 2.0 * alpha * alpha), 1e-9);
}

TEST(Intervals, VarianceMonotoneInHorizonForAllFamilies) {
  // Accumulating uncertainty: var_h must be non-decreasing.
  const TimeSeries series = NoisySeries(120, 4.0, 5);
  for (ModelType type : {ModelType::kMean, ModelType::kNaive,
                         ModelType::kDrift, ModelType::kSes, ModelType::kHolt,
                         ModelType::kTheta}) {
    ModelSpec spec;
    spec.type = type;
    spec.period = 12;
    ModelFactory factory(spec);
    auto model = factory.CreateAndFit(series);
    ASSERT_TRUE(model.ok()) << ModelTypeName(type);
    const auto var = model.value()->ForecastVariance(10);
    ASSERT_EQ(var.size(), 10u) << ModelTypeName(type);
    for (std::size_t h = 1; h < var.size(); ++h) {
      EXPECT_GE(var[h] + 1e-12, var[h - 1]) << ModelTypeName(type);
    }
    EXPECT_GT(var[0], 0.0) << ModelTypeName(type);
  }
}

TEST(Intervals, ArimaPsiWeightsMatchAr1Theory) {
  // AR(1): psi_k = phi^k, var_h = sigma2 * sum phi^{2k}.
  Rng rng(6);
  std::vector<double> xs(3000);
  double prev = 0.0;
  for (double& v : xs) {
    prev = 0.6 * prev + rng.NextGaussian();
    v = prev + 100.0;
  }
  ArimaModel model(ArimaOrder{1, 0, 0, 0, 0, 0, 1});
  ASSERT_TRUE(model.Fit(TimeSeries(xs)).ok());
  const double phi = model.phi()[0];
  const double sigma2 = model.residual_variance();
  const auto var = model.ForecastVariance(3);
  EXPECT_NEAR(var[0], sigma2, 1e-9);
  EXPECT_NEAR(var[1], sigma2 * (1.0 + phi * phi), 1e-9);
  EXPECT_NEAR(var[2], sigma2 * (1.0 + phi * phi + std::pow(phi, 4)), 1e-9);
}

TEST(Intervals, IntegratedArimaVarianceDiverges) {
  // Random walk: var_h = sigma2 * h (psi weights all 1 after integration).
  Rng rng(7);
  std::vector<double> xs(500);
  double level = 100.0;
  for (double& v : xs) {
    level += rng.NextGaussian();
    v = level;
  }
  ArimaModel model(ArimaOrder{0, 1, 0, 0, 0, 0, 1});
  ASSERT_TRUE(model.Fit(TimeSeries(xs)).ok());
  const auto var = model.ForecastVariance(5);
  const double sigma2 = model.residual_variance();
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_NEAR(var[h], sigma2 * static_cast<double>(h + 1), 1e-9);
  }
}

TEST(Intervals, CoverageApproximatelyNominal) {
  // Empirical check: ~95% of future values of white noise around a level
  // fall inside the 95% interval of a MeanModel.
  Rng rng(8);
  std::size_t covered = 0;
  const std::size_t trials = 400;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::vector<double> xs(60);
    for (double& v : xs) v = 50.0 + rng.Gaussian(0.0, 3.0);
    MeanModel model;
    ASSERT_TRUE(model.Fit(TimeSeries(xs)).ok());
    auto interval = ForecastWithIntervals(model, 1, 0.95);
    ASSERT_TRUE(interval.ok());
    const double future = 50.0 + rng.Gaussian(0.0, 3.0);
    if (future >= interval.value()[0].lower &&
        future <= interval.value()[0].upper) {
      ++covered;
    }
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

}  // namespace
}  // namespace f2db
