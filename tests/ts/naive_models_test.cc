#include "ts/naive_models.h"

#include <gtest/gtest.h>

namespace f2db {
namespace {

TEST(MeanModel, ForecastsHistoricalMean) {
  MeanModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({2, 4, 6})).ok());
  const auto f = model.Forecast(3);
  ASSERT_EQ(f.size(), 3u);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(MeanModel, UpdateMaintainsRunningMean) {
  MeanModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({2, 4})).ok());
  model.Update(9);  // mean of {2,4,9} = 5
  EXPECT_DOUBLE_EQ(model.Forecast(1)[0], 5.0);
}

TEST(MeanModel, RejectsEmpty) {
  MeanModel model;
  EXPECT_FALSE(model.Fit(TimeSeries()).ok());
  EXPECT_FALSE(model.is_fitted());
}

TEST(NaiveModel, ForecastsLastValue) {
  NaiveModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({1, 2, 7})).ok());
  EXPECT_DOUBLE_EQ(model.Forecast(2)[1], 7.0);
  model.Update(9);
  EXPECT_DOUBLE_EQ(model.Forecast(1)[0], 9.0);
}

TEST(SeasonalNaive, RepeatsLastSeason) {
  SeasonalNaiveModel model(4);
  ASSERT_TRUE(model.Fit(TimeSeries({0, 0, 0, 0, 1, 2, 3, 4})).ok());
  const auto f = model.Forecast(6);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[3], 4.0);
  EXPECT_DOUBLE_EQ(f[4], 1.0);  // wraps around
}

TEST(SeasonalNaive, UpdateRotatesSeason) {
  SeasonalNaiveModel model(2);
  ASSERT_TRUE(model.Fit(TimeSeries({1, 2})).ok());
  model.Update(10);  // replaces the value for this season slot
  const auto f = model.Forecast(2);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 10.0);
}

TEST(SeasonalNaive, RejectsTooShortOrZeroPeriod) {
  SeasonalNaiveModel model(4);
  EXPECT_FALSE(model.Fit(TimeSeries({1, 2, 3})).ok());
  SeasonalNaiveModel zero(0);
  EXPECT_FALSE(zero.Fit(TimeSeries({1, 2, 3})).ok());
}

TEST(DriftModel, ExtrapolatesAverageStep) {
  DriftModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({0, 1, 2, 3})).ok());  // slope 1
  const auto f = model.Forecast(2);
  EXPECT_DOUBLE_EQ(f[0], 4.0);
  EXPECT_DOUBLE_EQ(f[1], 5.0);
}

TEST(DriftModel, UpdateAdjustsSlope) {
  DriftModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({0, 2})).ok());  // slope 2
  model.Update(6);                                  // now slope (6-0)/2 = 3
  EXPECT_DOUBLE_EQ(model.Forecast(1)[0], 9.0);
}

TEST(DriftModel, RejectsSingleton) {
  DriftModel model;
  EXPECT_FALSE(model.Fit(TimeSeries({5})).ok());
}

TEST(NaiveModels, CloneIsIndependent) {
  MeanModel model;
  ASSERT_TRUE(model.Fit(TimeSeries({1, 3})).ok());
  auto clone = model.Clone();
  model.Update(100);
  EXPECT_DOUBLE_EQ(clone->Forecast(1)[0], 2.0);
  EXPECT_NE(clone->Forecast(1)[0], model.Forecast(1)[0]);
}

TEST(NaiveModels, SaveRestoreRoundTrip) {
  SeasonalNaiveModel model(3);
  ASSERT_TRUE(model.Fit(TimeSeries({1, 2, 3, 4, 5, 6})).ok());
  model.Update(7);
  const auto state = model.SaveState();

  SeasonalNaiveModel restored(1);  // period overwritten by state
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.Forecast(5), model.Forecast(5));
}

TEST(NaiveModels, RestoreRejectsBadState) {
  MeanModel mean;
  EXPECT_FALSE(mean.RestoreState({1.0}).ok());
  SeasonalNaiveModel sn(2);
  EXPECT_FALSE(sn.RestoreState({2.0, 0.0}).ok());      // missing season
  EXPECT_FALSE(sn.RestoreState({0.0, 0.0}).ok());      // zero period
  DriftModel drift;
  EXPECT_FALSE(drift.RestoreState({1.0, 2.0}).ok());
}

TEST(NaiveModels, TypeAndParameterMetadata) {
  MeanModel mean;
  EXPECT_EQ(mean.type(), ModelType::kMean);
  EXPECT_EQ(mean.num_parameters(), 1u);
  NaiveModel naive;
  EXPECT_EQ(naive.type(), ModelType::kNaive);
  EXPECT_EQ(naive.num_parameters(), 0u);
  DriftModel drift;
  ASSERT_TRUE(drift.Fit(TimeSeries({0, 2, 4})).ok());
  EXPECT_DOUBLE_EQ(drift.parameters()[0], 2.0);  // slope
}

}  // namespace
}  // namespace f2db
