// Tests for seasonality detection, classical decomposition, Box-Cox, the
// Theta method, and automatic ARIMA order selection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/sarima_generator.h"
#include "ts/accuracy.h"
#include "ts/auto_arima.h"
#include "ts/decomposition.h"
#include "ts/seasonality.h"
#include "ts/theta.h"

namespace f2db {
namespace {

TimeSeries SeasonalTrend(std::size_t n, std::size_t period, double amp,
                         double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = 100.0 + 0.5 * static_cast<double>(t) +
             amp * std::sin(2.0 * M_PI * static_cast<double>(t) /
                            static_cast<double>(period)) +
             rng.Gaussian(0.0, noise);
  }
  return TimeSeries(out);
}

// ------------------------------------------------------------- seasonality

TEST(Seasonality, DetectsQuarterlyAndMonthly) {
  EXPECT_EQ(DetectSeasonality(SeasonalTrend(80, 4, 20, 0.5, 1)).period, 4u);
  EXPECT_EQ(DetectSeasonality(SeasonalTrend(144, 12, 20, 0.5, 2)).period,
            12u);
}

TEST(Seasonality, WhiteNoiseHasNoSeason) {
  Rng rng(3);
  std::vector<double> xs(200);
  for (double& v : xs) v = rng.NextGaussian();
  const auto result = DetectSeasonality(TimeSeries(xs));
  EXPECT_EQ(result.period, 1u);
  EXPECT_DOUBLE_EQ(result.strength, 0.0);
}

TEST(Seasonality, TrendAloneIsNotSeasonal) {
  std::vector<double> xs(120);
  for (std::size_t t = 0; t < xs.size(); ++t) xs[t] = static_cast<double>(t);
  EXPECT_EQ(DetectSeasonality(TimeSeries(xs)).period, 1u);
}

TEST(Seasonality, RespectsCandidateRestriction) {
  SeasonalityOptions options;
  options.candidates = {7};  // wrong period only
  const auto result =
      DetectSeasonality(SeasonalTrend(120, 12, 25, 0.1, 4), options);
  EXPECT_EQ(result.period, 1u);
}

TEST(Seasonality, ShortSeriesGraceful) {
  EXPECT_EQ(DetectSeasonality(TimeSeries({1, 2, 3})).period, 1u);
}

// ----------------------------------------------------------- decomposition

TEST(Decomposition, AdditiveRecomposesExactly) {
  const TimeSeries series = SeasonalTrend(96, 12, 15, 1.0, 5);
  auto d = Decompose(series, 12, DecompositionType::kAdditive);
  ASSERT_TRUE(d.ok());
  for (std::size_t t = 0; t < series.size(); ++t) {
    EXPECT_NEAR(d.value().trend[t] + d.value().seasonal[t] +
                    d.value().remainder[t],
                series[t], 1e-9);
  }
}

TEST(Decomposition, MultiplicativeRecomposesExactly) {
  Rng rng(6);
  std::vector<double> xs(96);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    xs[t] = (50.0 + static_cast<double>(t)) *
            (1.0 + 0.3 * std::sin(2.0 * M_PI * t / 12.0)) *
            (1.0 + rng.Gaussian(0.0, 0.01));
  }
  auto d = Decompose(TimeSeries(xs), 12, DecompositionType::kMultiplicative);
  ASSERT_TRUE(d.ok());
  for (std::size_t t = 0; t < xs.size(); ++t) {
    EXPECT_NEAR(d.value().trend[t] * d.value().seasonal[t] *
                    d.value().remainder[t],
                xs[t], 1e-6);
  }
}

TEST(Decomposition, SeasonalIndicesNormalized) {
  const TimeSeries series = SeasonalTrend(96, 12, 15, 0.5, 7);
  auto d = Decompose(series, 12, DecompositionType::kAdditive);
  ASSERT_TRUE(d.ok());
  double sum = 0.0;
  for (std::size_t j = 0; j < 12; ++j) sum += d.value().seasonal[j];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Decomposition, SeasonalIndicesTrackTheSine) {
  const TimeSeries series = SeasonalTrend(120, 12, 20, 0.2, 8);
  auto d = Decompose(series, 12, DecompositionType::kAdditive);
  ASSERT_TRUE(d.ok());
  // Peak of sin(2 pi t / 12) is at t = 3.
  double max_index = -1e9;
  std::size_t argmax = 0;
  for (std::size_t j = 0; j < 12; ++j) {
    if (d.value().seasonal[j] > max_index) {
      max_index = d.value().seasonal[j];
      argmax = j;
    }
  }
  EXPECT_EQ(argmax, 3u);
  EXPECT_NEAR(max_index, 20.0, 3.0);
}

TEST(Decomposition, Validation) {
  const TimeSeries series = SeasonalTrend(20, 12, 5, 0.1, 9);
  EXPECT_FALSE(Decompose(series, 1).ok());
  EXPECT_FALSE(Decompose(series, 12).ok());  // < 2 seasons
  TimeSeries negative({-1, 2, -3, 4, -1, 2, -3, 4, -1, 2, -3, 4});
  EXPECT_FALSE(
      Decompose(negative, 4, DecompositionType::kMultiplicative).ok());
}

// ----------------------------------------------------------------- box-cox

TEST(BoxCox, LambdaZeroIsLog) {
  auto transformed = BoxCox({1.0, std::exp(1.0)}, 0.0);
  ASSERT_TRUE(transformed.ok());
  EXPECT_NEAR(transformed.value()[0], 0.0, 1e-12);
  EXPECT_NEAR(transformed.value()[1], 1.0, 1e-12);
}

TEST(BoxCox, RoundTripsThroughInverse) {
  const std::vector<double> xs{0.5, 1.0, 10.0, 123.0};
  for (double lambda : {-1.0, -0.5, 0.0, 0.5, 1.0, 2.0}) {
    auto transformed = BoxCox(xs, lambda);
    ASSERT_TRUE(transformed.ok());
    const auto back = InverseBoxCox(transformed.value(), lambda);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_NEAR(back[i], xs[i], 1e-9) << "lambda " << lambda;
    }
  }
}

TEST(BoxCox, RejectsNonPositive) {
  EXPECT_FALSE(BoxCox({1.0, 0.0}, 0.5).ok());
  EXPECT_FALSE(BoxCox({-1.0}, 1.0).ok());
}

TEST(BoxCox, LambdaSelectionPrefersLogForMultiplicativeData) {
  Rng rng(10);
  std::vector<double> xs(120);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    // Exponential growth with proportional seasonality: log stabilizes it.
    xs[t] = std::exp(0.03 * static_cast<double>(t)) *
            (1.0 + 0.3 * std::sin(2.0 * M_PI * t / 12.0)) *
            (1.0 + rng.Gaussian(0.0, 0.02));
  }
  auto lambda = SelectBoxCoxLambda(xs, 12);
  ASSERT_TRUE(lambda.ok());
  EXPECT_LE(lambda.value(), 0.5);  // strongly sub-linear transform
}

// ------------------------------------------------------------------- theta

TEST(Theta, BeatsNaiveOnTrendedData) {
  const TimeSeries series = SeasonalTrend(80, 12, 0.0, 1.0, 11);
  const auto [train, test] = series.TrainTestSplit(0.8);
  ThetaModel theta(1);
  ASSERT_TRUE(theta.Fit(train).ok());
  const double theta_err = Smape(test.values(), theta.Forecast(test.size()));
  const double naive_err =
      Smape(test.values(),
            std::vector<double>(test.size(), train.values().back()));
  EXPECT_LT(theta_err, naive_err);
}

TEST(Theta, DeseasonalizesWhenPeriodGiven) {
  const TimeSeries series = SeasonalTrend(96, 12, 20, 0.5, 12);
  const auto [train, test] = series.TrainTestSplit(0.8);
  ThetaModel seasonal(12);
  ThetaModel plain(1);
  ASSERT_TRUE(seasonal.Fit(train).ok());
  ASSERT_TRUE(plain.Fit(train).ok());
  EXPECT_LT(Smape(test.values(), seasonal.Forecast(test.size())),
            Smape(test.values(), plain.Forecast(test.size())));
}

TEST(Theta, DriftIsHalfTheSlope) {
  std::vector<double> xs(50);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    xs[t] = 10.0 + 2.0 * static_cast<double>(t);
  }
  ThetaModel theta(1);
  ASSERT_TRUE(theta.Fit(TimeSeries(xs)).ok());
  EXPECT_NEAR(theta.drift(), 1.0, 1e-9);
}

TEST(Theta, SaveRestoreRoundTrip) {
  const TimeSeries series = SeasonalTrend(96, 12, 20, 0.5, 13);
  ThetaModel model(12);
  ASSERT_TRUE(model.Fit(series).ok());
  model.Update(140.0);
  const auto state = model.SaveState();
  ThetaModel restored(1);
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.Forecast(13), model.Forecast(13));
  restored.Update(150.0);
  model.Update(150.0);
  EXPECT_EQ(restored.Forecast(1), model.Forecast(1));
}

TEST(Theta, RejectsTinySeriesAndBadState) {
  ThetaModel model(1);
  EXPECT_FALSE(model.Fit(TimeSeries({1, 2, 3})).ok());
  EXPECT_FALSE(model.RestoreState({1, 2, 3}).ok());
}

// -------------------------------------------------------------- auto arima

TEST(AutoArima, SelectsDifferencingForRandomWalk) {
  Rng rng(14);
  std::vector<double> xs(300);
  double level = 0.0;
  for (double& v : xs) {
    level += 1.0 + rng.Gaussian(0.0, 0.5);
    v = level;
  }
  EXPECT_GE(SelectDifferencingOrder(xs, 2), 1u);
  // Stationary noise needs none.
  std::vector<double> noise(300);
  for (double& v : noise) v = rng.NextGaussian();
  EXPECT_EQ(SelectDifferencingOrder(noise, 2), 0u);
}

TEST(AutoArima, SeasonalDifferencingForStrongSeason) {
  SarimaProcess process;
  process.order.sd = 1;
  process.order.season = 12;
  process.noise_stddev = 0.2;
  Rng rng(15);
  const TimeSeries series = SimulateSarima(process, 240, rng);
  EXPECT_EQ(SelectSeasonalDifferencing(series.values(), 12, 1), 1u);
  std::vector<double> noise(240);
  for (double& v : noise) v = rng.NextGaussian();
  EXPECT_EQ(SelectSeasonalDifferencing(noise, 12, 1), 0u);
}

TEST(AutoArima, RecoversLowOrderForAr1) {
  Rng rng(16);
  std::vector<double> xs(600);
  double prev = 0.0;
  for (double& v : xs) {
    prev = 0.7 * prev + rng.NextGaussian();
    v = prev + 50.0;
  }
  AutoArimaOptions options;
  options.max_p = 2;
  options.max_q = 2;
  auto result = AutoArima(TimeSeries(xs), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().models_tried, 1u);
  EXPECT_EQ(result.value().order.d, 0u);
  // AR(1)-ish structure: small total order, includes AR or MA terms.
  EXPECT_LE(result.value().order.p + result.value().order.q, 3u);
  EXPECT_GE(result.value().order.p + result.value().order.q, 1u);
}

TEST(AutoArima, ForecastsSarimaBetterThanNaive) {
  SarimaProcess process;
  process.order.p = 1;
  process.order.sd = 1;
  process.order.season = 12;
  process.phi = {0.4};
  process.noise_stddev = 0.5;
  process.level_offset = 200.0;
  Rng rng(17);
  const TimeSeries series = SimulateSarima(process, 200, rng);
  const auto [train, test] = series.TrainTestSplit(0.9);

  AutoArimaOptions options;
  options.season = 12;
  options.max_p = 2;
  options.max_q = 1;
  auto result = AutoArima(train, options);
  ASSERT_TRUE(result.ok());
  const double model_err =
      Smape(test.values(), result.value().model->Forecast(test.size()));
  const double naive_err = Smape(
      test.values(), std::vector<double>(test.size(), train.values().back()));
  EXPECT_LT(model_err, naive_err);
}

TEST(AutoArima, RejectsShortSeries) {
  EXPECT_FALSE(AutoArima(TimeSeries(std::vector<double>(8, 1.0))).ok());
}

}  // namespace
}  // namespace f2db
