#include "core/advisor.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"

namespace f2db {
namespace {

AdvisorOptions FastOptions() {
  AdvisorOptions options;
  options.models_per_iteration = 4;
  options.seed = 7;
  options.stop.max_iterations = 20;
  return options;
}

ModelFactory HwFactory(std::size_t period = 4) {
  return ModelFactory(ModelSpec::TripleExponentialSmoothing(period));
}

TEST(Advisor, ProducesValidConfiguration) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  ModelConfigurationAdvisor advisor(graph, HwFactory(), FastOptions());
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AdvisorResult& r = result.value();
  EXPECT_GE(r.configuration.num_models(), 1u);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_LE(r.final_error, 1.0);
  EXPECT_EQ(r.final_error, r.configuration.MeanError());
  EXPECT_EQ(r.history.size(), r.iterations);
}

TEST(Advisor, ErrorNeverWorseThanSeedConfiguration) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), FastOptions());
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.value().history.size(), 2u);
  EXPECT_LE(result.value().final_error,
            result.value().history.front().error + 1e-9);
}

TEST(Advisor, ErrorMonotonicallyNonIncreasingAcrossIterations) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), FastOptions());
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  double prev = 1.0;
  for (const AdvisorSnapshot& s : result.value().history) {
    // Deletions may trade tiny error for cost; allow an epsilon.
    EXPECT_LE(s.error, prev + 0.05);
    prev = s.error;
  }
}

TEST(Advisor, StopCriterionMaxModels) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.stop = StopCriteria{};
  options.stop.max_models = 2;
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().configuration.num_models(), 2u + 4u);
}

TEST(Advisor, StopCriterionTargetError) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.2);
  AdvisorOptions options = FastOptions();
  options.stop = StopCriteria{};
  options.stop.target_error = 0.9;  // satisfied almost immediately
  ModelConfigurationAdvisor advisor(graph, HwFactory(), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().iterations, 2u);
}

TEST(Advisor, StopCriterionMaxIterations) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.stop.max_iterations = 3;
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().iterations, 3u);
}

TEST(Advisor, CallbackCanInterrupt) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.stop = StopCriteria{};  // no automatic stop except alpha
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
  std::size_t calls = 0;
  advisor.set_iteration_callback([&calls](const AdvisorSnapshot&) {
    ++calls;
    return calls < 2;  // interrupt after the second iteration
  });
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().iterations, 2u);
}

TEST(Advisor, AlphaScheduleReachesFinalAlpha) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  AdvisorOptions options = FastOptions();
  options.stop = StopCriteria{};
  options.initial_alpha = 0.1;
  ModelConfigurationAdvisor advisor(graph, HwFactory(), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().history.back().alpha, 1.0, 1e-9);
}

TEST(Advisor, PinnedAlphaStaysPinned) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  AdvisorOptions options = FastOptions();
  options.initial_alpha = 0.5;
  options.final_alpha = 0.5;
  ModelConfigurationAdvisor advisor(graph, HwFactory(), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  for (const AdvisorSnapshot& s : result.value().history) {
    EXPECT_NEAR(s.alpha, 0.5, 1e-9);
  }
}

TEST(Advisor, HigherAlphaAcceptsAtLeastAsManyModels) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60, 0.1);
  auto run_with_alpha = [&](double alpha) {
    AdvisorOptions options = FastOptions();
    options.initial_alpha = alpha;
    options.final_alpha = alpha;
    ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
    auto result = advisor.Run();
    EXPECT_TRUE(result.ok());
    return result.value().configuration.num_models();
  };
  EXPECT_LE(run_with_alpha(0.2), run_with_alpha(1.0) + 1);
}

TEST(Advisor, WithoutTopSeedStillWorks) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  AdvisorOptions options = FastOptions();
  options.start_with_top_model = false;
  ModelConfigurationAdvisor advisor(graph, HwFactory(), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().configuration.num_models(), 1u);
  EXPECT_LT(result.value().final_error, 1.0);
}

TEST(Advisor, IndicatorSizeOptionRespected) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.indicator_size = 5;
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
  EXPECT_EQ(advisor.indicator_size(), 5u);
  AdvisorOptions big = FastOptions();
  big.indicator_size = 100000;
  ModelConfigurationAdvisor clamped(graph, HwFactory(12), big);
  EXPECT_EQ(clamped.indicator_size(), graph.num_nodes() - 1);
}

TEST(Advisor, RejectsTooShortSeries) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(4);
  ModelConfigurationAdvisor advisor(graph, HwFactory(), FastOptions());
  EXPECT_FALSE(advisor.Run().ok());
}

TEST(Advisor, DeterministicAcrossRuns) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.num_threads = 1;             // single worker for full determinism
  options.count_models_as_cost = true;  // no wall-clock noise in Eq. 8
  ModelConfigurationAdvisor a(graph, HwFactory(12), options);
  ModelConfigurationAdvisor b(graph, HwFactory(12), options);
  auto ra = a.Run();
  auto rb = b.Run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().configuration.num_models(),
            rb.value().configuration.num_models());
  EXPECT_NEAR(ra.value().final_error, rb.value().final_error, 1e-12);
  EXPECT_EQ(ra.value().configuration.model_nodes(),
            rb.value().configuration.model_nodes());
}

TEST(Advisor, AsyncMultiSourceRunsCleanly) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60);
  AdvisorOptions options = FastOptions();
  options.async_multi_source = true;
  ModelConfigurationAdvisor advisor(graph, HwFactory(12), options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().final_error, 1.0);
}

}  // namespace
}  // namespace f2db
