#include "core/indicators.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"

namespace f2db {
namespace {

TEST(Indicators, SelfIndicatorIsZero) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 1.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorComputer computer(evaluator, IndicatorOptions{});
  EXPECT_DOUBLE_EQ(computer.Indicate(0, 0), 0.0);
}

TEST(Indicators, LowForDerivableHighForNot) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 0.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorComputer computer(evaluator, IndicatorOptions{});
  // Proportional series: derivation is near perfect.
  EXPECT_LT(computer.Indicate(graph.top_node(), graph.base_nodes()[0]), 0.05);
}

TEST(Indicators, AblationWeightsRespected) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 2.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorOptions history_only;
  history_only.similarity_weight = 0.0;
  IndicatorOptions similarity_only;
  similarity_only.historical_weight = 0.0;
  similarity_only.similarity_weight = 1.0;
  IndicatorComputer hist(evaluator, history_only);
  IndicatorComputer sim(evaluator, similarity_only);
  IndicatorComputer both(evaluator, IndicatorOptions{});

  const NodeId s = graph.top_node();
  const NodeId t = graph.base_nodes()[1];
  EXPECT_NEAR(both.Indicate(s, t),
              hist.Indicate(s, t) + 0.5 * sim.Indicate(s, t), 1e-12);
}

TEST(Indicators, LocalIncludesSelfAtZero) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 1.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorComputer computer(evaluator, IndicatorOptions{});
  const LocalIndicator local = computer.ComputeLocal(graph.top_node(), 3);
  ASSERT_EQ(local.entries.size(), 4u);  // self + 3 nearest
  bool found_self = false;
  for (const auto& [target, value] : local.entries) {
    if (target == graph.top_node()) {
      found_self = true;
      EXPECT_DOUBLE_EQ(value, 0.0);
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(Indicators, LocalSizeClampedToGraph) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 1.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorComputer computer(evaluator, IndicatorOptions{});
  const LocalIndicator local = computer.ComputeLocal(0, 1000);
  EXPECT_EQ(local.entries.size(), graph.num_nodes());
}

TEST(GlobalIndicator, DefaultsToUncovered) {
  GlobalIndicator global(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(global.value(static_cast<NodeId>(i)),
                     kUncoveredIndicator);
  }
  EXPECT_DOUBLE_EQ(global.Mean(), kUncoveredIndicator);
  EXPECT_DOUBLE_EQ(global.StdDev(), 0.0);
}

TEST(GlobalIndicator, MergeTakesElementwiseMin) {
  GlobalIndicator global(3);
  LocalIndicator a;
  a.source = 0;
  a.entries = {{0, 0.0}, {1, 0.5}};
  global.Merge(a);
  LocalIndicator b;
  b.source = 1;
  b.entries = {{1, 0.2}, {2, 0.9}};
  global.Merge(b);
  EXPECT_DOUBLE_EQ(global.value(0), 0.0);
  EXPECT_DOUBLE_EQ(global.value(1), 0.2);
  EXPECT_DOUBLE_EQ(global.value(2), 0.9);
}

TEST(GlobalIndicator, RebuildResetsFirst) {
  GlobalIndicator global(2);
  LocalIndicator a;
  a.source = 0;
  a.entries = {{0, 0.1}, {1, 0.1}};
  global.Merge(a);
  LocalIndicator b;
  b.source = 1;
  b.entries = {{1, 0.3}};
  global.Rebuild({&b});
  EXPECT_DOUBLE_EQ(global.value(0), kUncoveredIndicator);  // a gone
  EXPECT_DOUBLE_EQ(global.value(1), 0.3);
}

TEST(GlobalIndicator, MeanAndStdDev) {
  GlobalIndicator global(2);
  LocalIndicator a;
  a.source = 0;
  a.entries = {{0, 0.0}, {1, 1.0}};
  global.Merge(a);
  EXPECT_DOUBLE_EQ(global.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(global.StdDev(), 0.5);
}

TEST(Indicators, UncoveredDominatesAnyComputedValue) {
  // historical <= 1 and similarity term <= similarity_weight, so any
  // computed indicator stays below the uncovered default.
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 5.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  IndicatorComputer computer(evaluator, IndicatorOptions{});
  for (NodeId s = 0; s < graph.num_nodes(); ++s) {
    for (NodeId t = 0; t < graph.num_nodes(); ++t) {
      EXPECT_LT(computer.Indicate(s, t), kUncoveredIndicator);
    }
  }
}

}  // namespace
}  // namespace f2db
