#include "core/multi_source.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"
#include "ts/exponential_smoothing.h"

namespace f2db {
namespace {

ModelEntry MakeEntry(const ConfigurationEvaluator& evaluator, NodeId node) {
  ModelEntry entry;
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(4);
  EXPECT_TRUE(model->Fit(evaluator.TrainSeries(node)).ok());
  entry.test_forecast = model->Forecast(evaluator.test_length());
  entry.model = std::move(model);
  return entry;
}

class MultiSourceTest : public ::testing::Test {
 protected:
  MultiSourceTest()
      : graph_(testing::MakeFigure2Cube(60, 0.05)), evaluator_(graph_, 0.8) {}

  ModelConfiguration ConfigWithBaseModels() {
    ModelConfiguration config(graph_.num_nodes());
    for (NodeId base : graph_.base_nodes()) {
      config.AddModel(base, MakeEntry(evaluator_, base));
      config.ApplyModelSchemes(evaluator_, base);
    }
    return config;
  }

  TimeSeriesGraph graph_;
  ConfigurationEvaluator evaluator_;
};

TEST_F(MultiSourceTest, SampleProbeNeedsAtLeastTwoModels) {
  MultiSourceOptimizer optimizer(evaluator_, MultiSourceOptions{}, 1);
  Rng rng(2);
  EXPECT_FALSE(optimizer.SampleProbe({}, rng).has_value());
  EXPECT_FALSE(optimizer.SampleProbe({graph_.base_nodes()[0]}, rng)
                   .has_value());
}

TEST_F(MultiSourceTest, ProbeSourcesCarryModelsAndExcludeTarget) {
  MultiSourceOptimizer optimizer(evaluator_, MultiSourceOptions{}, 1);
  Rng rng(3);
  const std::vector<NodeId> model_nodes(graph_.base_nodes());
  for (int i = 0; i < 200; ++i) {
    auto probe = optimizer.SampleProbe(model_nodes, rng);
    if (!probe.has_value()) continue;
    EXPECT_GE(probe->second.sources.size(), 2u);
    for (NodeId s : probe->second.sources) {
      EXPECT_NE(s, probe->first);
      EXPECT_NE(std::find(model_nodes.begin(), model_nodes.end(), s),
                model_nodes.end());
    }
  }
}

TEST_F(MultiSourceTest, RunProbesImprovesAggregateNodes) {
  ModelConfiguration config = ConfigWithBaseModels();
  const double before = config.MeanError();
  MultiSourceOptimizer optimizer(evaluator_, MultiSourceOptions{}, 99);
  const std::size_t adopted = optimizer.RunProbes(config, 400);
  EXPECT_GT(adopted, 0u);
  EXPECT_LT(config.MeanError(), before);
}

TEST_F(MultiSourceTest, AsyncLifecycle) {
  ModelConfiguration config = ConfigWithBaseModels();
  MultiSourceOptimizer optimizer(evaluator_, MultiSourceOptions{}, 5);
  optimizer.StartAsync();
  optimizer.PublishModelNodes(config.model_nodes());
  // Give the background thread a moment to produce suggestions.
  std::size_t adopted = 0;
  for (int i = 0; i < 50 && adopted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    adopted += optimizer.DrainSuggestions(config);
  }
  optimizer.StopAsync();
  EXPECT_GT(adopted, 0u);
}

TEST_F(MultiSourceTest, StopWithoutStartIsNoop) {
  MultiSourceOptimizer optimizer(evaluator_, MultiSourceOptions{}, 5);
  optimizer.StopAsync();  // must not crash or hang
}

}  // namespace
}  // namespace f2db
