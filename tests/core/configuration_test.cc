#include "core/configuration.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"
#include "ts/exponential_smoothing.h"

namespace f2db {
namespace {

ModelEntry MakeEntry(const ConfigurationEvaluator& evaluator, NodeId node,
                     std::vector<NodeId> coverage) {
  ModelEntry entry;
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(4);
  EXPECT_TRUE(model->Fit(evaluator.TrainSeries(node)).ok());
  entry.test_forecast = model->Forecast(evaluator.test_length());
  entry.model = std::move(model);
  entry.creation_seconds = 0.5;
  entry.coverage = std::move(coverage);
  return entry;
}

class ConfigurationTest : public ::testing::Test {
 protected:
  ConfigurationTest()
      : graph_(testing::MakeRegionCube(48, 0.5)), evaluator_(graph_, 0.8) {}

  TimeSeriesGraph graph_;
  ConfigurationEvaluator evaluator_;
};

TEST_F(ConfigurationTest, StartsEmptyAndUncovered) {
  ModelConfiguration config(graph_.num_nodes());
  EXPECT_EQ(config.num_models(), 0u);
  EXPECT_DOUBLE_EQ(config.MeanError(), 1.0);
  EXPECT_DOUBLE_EQ(config.TotalCostSeconds(), 0.0);
  EXPECT_EQ(config.model(0), nullptr);
  EXPECT_TRUE(config.assignment(0).scheme.IsEmpty());
}

TEST_F(ConfigurationTest, AddRemoveModel) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId top = graph_.top_node();
  config.AddModel(top, MakeEntry(evaluator_, top, {}));
  EXPECT_TRUE(config.HasModel(top));
  EXPECT_EQ(config.num_models(), 1u);
  EXPECT_DOUBLE_EQ(config.TotalCostSeconds(), 0.5);
  EXPECT_EQ(config.model_nodes(), std::vector<NodeId>{top});

  ModelEntry removed = config.RemoveModel(top);
  EXPECT_NE(removed.model, nullptr);
  EXPECT_FALSE(config.HasModel(top));
  EXPECT_EQ(config.RemoveModel(top).model, nullptr);  // idempotent
}

TEST_F(ConfigurationTest, ApplyModelSchemesImprovesCoveredNodes) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId top = graph_.top_node();
  std::vector<NodeId> coverage(graph_.base_nodes());
  config.AddModel(top, MakeEntry(evaluator_, top, coverage));
  const std::size_t improved = config.ApplyModelSchemes(evaluator_, top);
  EXPECT_EQ(improved, 4u);  // top itself + 3 cities
  EXPECT_LT(config.MeanError(), 1.0);
  EXPECT_EQ(config.assignment(top).scheme, DerivationScheme::Direct(top));
  for (NodeId base : graph_.base_nodes()) {
    EXPECT_EQ(config.assignment(base).scheme, DerivationScheme::Single(top));
    EXPECT_LT(config.assignment(base).error, 1.0);
  }
}

TEST_F(ConfigurationTest, ApplyModelSchemesNeverWorsens) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId top = graph_.top_node();
  const NodeId base = graph_.base_nodes()[0];
  config.AddModel(top, MakeEntry(evaluator_, top, {base}));
  config.ApplyModelSchemes(evaluator_, top);
  const double before = config.assignment(base).error;
  // A second application changes nothing.
  EXPECT_EQ(config.ApplyModelSchemes(evaluator_, top), 0u);
  EXPECT_DOUBLE_EQ(config.assignment(base).error, before);
}

TEST_F(ConfigurationTest, MultiSourceSchemeAdoptedOnlyWhenBetter) {
  ModelConfiguration config(graph_.num_nodes());
  for (NodeId base : graph_.base_nodes()) {
    config.AddModel(base, MakeEntry(evaluator_, base, {}));
    config.ApplyModelSchemes(evaluator_, base);
  }
  // Aggregation of all three cities for the region node.
  const DerivationScheme agg =
      DerivationScheme::Multi(graph_.base_nodes());
  EXPECT_TRUE(config.TryMultiSourceScheme(evaluator_, graph_.top_node(), agg));
  EXPECT_EQ(config.assignment(graph_.top_node()).scheme.sources.size(), 3u);
  // Re-trying the same scheme is no longer an improvement.
  EXPECT_FALSE(
      config.TryMultiSourceScheme(evaluator_, graph_.top_node(), agg));
}

TEST_F(ConfigurationTest, MultiSourceRejectedWhenSourceMissing) {
  ModelConfiguration config(graph_.num_nodes());
  EXPECT_FALSE(config.TryMultiSourceScheme(
      evaluator_, graph_.top_node(),
      DerivationScheme::Multi(graph_.base_nodes())));
}

TEST_F(ConfigurationTest, RecomputeAfterDeletionFallsBack) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId top = graph_.top_node();
  const NodeId base0 = graph_.base_nodes()[0];
  std::vector<NodeId> all_nodes;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    if (n != top) all_nodes.push_back(n);
  }
  config.AddModel(top, MakeEntry(evaluator_, top, all_nodes));
  config.AddModel(base0, MakeEntry(evaluator_, base0, {top}));
  config.ApplyModelSchemes(evaluator_, top);
  config.ApplyModelSchemes(evaluator_, base0);

  config.RemoveModel(base0);
  config.RecomputeAssignments(evaluator_);
  // base0 falls back to a scheme from the remaining top model.
  EXPECT_EQ(config.assignment(base0).scheme, DerivationScheme::Single(top));
  EXPECT_LT(config.assignment(base0).error, 1.0);
}

TEST_F(ConfigurationTest, RecomputeNodesMatchesFullRecompute) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId top = graph_.top_node();
  std::vector<NodeId> all_nodes;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    if (n != top) all_nodes.push_back(n);
  }
  config.AddModel(top, MakeEntry(evaluator_, top, all_nodes));
  config.ApplyModelSchemes(evaluator_, top);

  ModelConfiguration reference(graph_.num_nodes());
  reference.AddModel(top, MakeEntry(evaluator_, top, all_nodes));
  reference.RecomputeAssignments(evaluator_);

  std::vector<NodeId> targets;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) targets.push_back(n);
  config.RecomputeNodes(evaluator_, targets);
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    EXPECT_NEAR(config.assignment(n).error, reference.assignment(n).error,
                1e-12);
  }
}

TEST_F(ConfigurationTest, ForecastsForCollectsInSchemeOrder) {
  ModelConfiguration config(graph_.num_nodes());
  const NodeId a = graph_.base_nodes()[0];
  const NodeId b = graph_.base_nodes()[1];
  config.AddModel(a, MakeEntry(evaluator_, a, {}));
  config.AddModel(b, MakeEntry(evaluator_, b, {}));
  const auto forecasts = config.ForecastsFor(DerivationScheme::Multi({a, b}));
  ASSERT_EQ(forecasts.size(), 2u);
  EXPECT_EQ(forecasts[0], &config.entry(a)->test_forecast);
  EXPECT_EQ(forecasts[1], &config.entry(b)->test_forecast);
  // Missing source -> empty result.
  EXPECT_TRUE(
      config.ForecastsFor(DerivationScheme::Multi({a, graph_.top_node()}))
          .empty());
}

TEST(DerivationScheme, Helpers) {
  EXPECT_TRUE(DerivationScheme{}.IsEmpty());
  EXPECT_TRUE(DerivationScheme::Direct(3).IsDirect(3));
  EXPECT_FALSE(DerivationScheme::Single(2).IsDirect(3));
  EXPECT_EQ(DerivationScheme::Multi({1, 2}).ToString(), "{1,2}");
}

}  // namespace
}  // namespace f2db
