#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"
#include "ts/accuracy.h"

namespace f2db {
namespace {

TEST(Evaluator, SplitLengths) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  EXPECT_EQ(evaluator.train_length(), 32u);
  EXPECT_EQ(evaluator.test_length(), 8u);
  EXPECT_EQ(evaluator.TrainSeries(0).size(), 32u);
  EXPECT_EQ(evaluator.TestActual(0).size(), 8u);
}

TEST(Evaluator, SplitAlwaysLeavesTestData) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(10);
  ConfigurationEvaluator evaluator(graph, 1.0);
  EXPECT_GE(evaluator.test_length(), 1u);
}

TEST(Evaluator, HistorySumIsTrainSum) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  const NodeId node = graph.base_nodes()[0];
  EXPECT_NEAR(evaluator.HistorySum(node),
              graph.series(node).Head(32).Sum(), 1e-9);
}

TEST(Evaluator, WeightEquationTwo) {
  // Disaggregation weight k_{parent->child} = h_child / h_parent.
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  const NodeId child = graph.base_nodes()[0];
  const NodeId parent = graph.top_node();
  const double k = evaluator.Weight({parent}, child);
  EXPECT_NEAR(k, evaluator.HistorySum(child) / evaluator.HistorySum(parent),
              1e-12);
  EXPECT_GT(k, 0.0);
  EXPECT_LT(k, 1.0);
}

TEST(Evaluator, WeightEquationThreeAggregationIsOne) {
  // Aggregating all children of the top node: k = h_t / sum h_children = 1.
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  std::vector<NodeId> children(graph.base_nodes());
  EXPECT_NEAR(evaluator.Weight(children, graph.top_node()), 1.0, 1e-9);
}

TEST(Evaluator, DirectWeightIsOne) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  const NodeId node = graph.base_nodes()[1];
  EXPECT_NEAR(evaluator.Weight({node}, node), 1.0, 1e-12);
}

TEST(Evaluator, WeightGuardsZeroDenominator) {
  TimeSeriesGraph graph = testing::MakeRegionCube(40);
  // Zero out one base series; weight from it must be 0, not inf.
  ASSERT_TRUE(graph
                  .SetBaseSeries(graph.base_nodes()[0],
                                 TimeSeries(std::vector<double>(40, 0.0)))
                  .ok());
  ASSERT_TRUE(graph.BuildAggregates().ok());
  ConfigurationEvaluator evaluator(graph, 0.8);
  EXPECT_DOUBLE_EQ(
      evaluator.Weight({graph.base_nodes()[0]}, graph.base_nodes()[1]), 0.0);
}

TEST(Evaluator, DeriveSumsAndScales) {
  const std::vector<double> f1{1, 2};
  const std::vector<double> f2{10, 20};
  const auto derived = ConfigurationEvaluator::Derive(0.5, {&f1, &f2});
  EXPECT_DOUBLE_EQ(derived[0], 5.5);
  EXPECT_DOUBLE_EQ(derived[1], 11.0);
}

TEST(Evaluator, SchemeErrorPerfectSourceMatchesSmape) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 0.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  const NodeId node = graph.base_nodes()[0];
  // Using the node's actual test values as its "forecast": error 0.
  const std::vector<double> perfect = evaluator.TestActual(node);
  EXPECT_NEAR(evaluator.SchemeError(DerivationScheme::Direct(node), {&perfect},
                                    node),
              0.0, 1e-12);
}

TEST(Evaluator, SchemeErrorEmptySchemeIsWorstCase) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  EXPECT_DOUBLE_EQ(evaluator.SchemeError(DerivationScheme{}, {}, 0), 1.0);
}

TEST(Evaluator, HistoricalErrorZeroForProportionalSeries) {
  // Noise-free region cube: city series are exact shares of the region, so
  // the perfect-model derivation reproduces history exactly.
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 0.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  const double err =
      evaluator.HistoricalError(graph.top_node(), graph.base_nodes()[0]);
  EXPECT_NEAR(err, 0.0, 1e-9);
}

TEST(Evaluator, HistoricalErrorGrowsWithNoise) {
  const TimeSeriesGraph clean = testing::MakeRegionCube(40, 0.0);
  const TimeSeriesGraph noisy = testing::MakeRegionCube(40, 3.0);
  ConfigurationEvaluator eval_clean(clean, 0.8);
  ConfigurationEvaluator eval_noisy(noisy, 0.8);
  EXPECT_LT(
      eval_clean.HistoricalError(clean.top_node(), clean.base_nodes()[0]),
      eval_noisy.HistoricalError(noisy.top_node(), noisy.base_nodes()[0]));
}

TEST(Evaluator, WeightInstabilityZeroForStableShares) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 0.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  EXPECT_NEAR(
      evaluator.WeightInstability(graph.top_node(), graph.base_nodes()[0]),
      0.0, 1e-9);
}

TEST(Evaluator, WeightInstabilityPositiveForNoisyShares) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 3.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  EXPECT_GT(
      evaluator.WeightInstability(graph.top_node(), graph.base_nodes()[0]),
      0.01);
}

TEST(Evaluator, MultiSourceHistoricalErrorUsesJointWeight) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40, 0.0);
  ConfigurationEvaluator evaluator(graph, 0.8);
  // Deriving the region from all three cities is exact.
  const double err = evaluator.HistoricalErrorMulti(
      {graph.base_nodes()[0], graph.base_nodes()[1], graph.base_nodes()[2]},
      graph.top_node());
  EXPECT_NEAR(err, 0.0, 1e-9);
}

}  // namespace
}  // namespace f2db
