// Shared test fixtures: small cubes mirroring the paper's running examples.

#ifndef F2DB_TESTS_TESTING_TEST_CUBES_H_
#define F2DB_TESTS_TESTING_TEST_CUBES_H_

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "cube/cube_schema.h"
#include "cube/graph.h"

namespace f2db::testing {

/// The Figure 4 mini-graph: one region R1 with three cities C1, C2, C3.
/// Base series are deterministic seasonal patterns plus optional noise.
inline TimeSeriesGraph MakeRegionCube(std::size_t length = 40,
                                      double noise = 0.0,
                                      std::uint64_t seed = 7) {
  Hierarchy location("location");
  Status s = location.AddLevel("city", {"C1", "C2", "C3"});
  (void)s;
  s = location.AddLevel("region", {"R1"});
  (void)s;
  s = location.SetParent(0, 0, 0);
  s = location.SetParent(0, 1, 0);
  s = location.SetParent(0, 2, 0);
  s = location.Finalize();

  CubeSchema schema;
  s = schema.AddHierarchy(std::move(location));
  auto graph = TimeSeriesGraph::Create(std::move(schema));
  Rng rng(seed);
  const double scales[3] = {10.0, 20.0, 30.0};
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double season =
          1.0 + 0.3 * std::sin(2.0 * 3.14159265358979 * double(t) / 4.0);
      values[t] = scales[c] * season * (1.0 + 0.01 * double(t)) +
                  (noise > 0 ? rng.Gaussian(0.0, noise) : 0.0);
      if (values[t] < 0.1) values[t] = 0.1;
    }
    s = graph.value().SetBaseSeries(graph.value().base_nodes()[c],
                                    TimeSeries(values));
  }
  s = graph.value().BuildAggregates();
  return std::move(graph).value();
}

/// The Figure 2 cube: city -> region hierarchy (C1,C2 -> R1; C3,C4 -> R2)
/// crossed with two products (P1, P2). 8 base series, 45 nodes total.
inline TimeSeriesGraph MakeFigure2Cube(std::size_t length = 48,
                                       double noise = 0.05,
                                       std::uint64_t seed = 11) {
  Hierarchy location("location");
  Status s = location.AddLevel("city", {"C1", "C2", "C3", "C4"});
  s = location.AddLevel("region", {"R1", "R2"});
  s = location.SetParent(0, 0, 0);
  s = location.SetParent(0, 1, 0);
  s = location.SetParent(0, 2, 1);
  s = location.SetParent(0, 3, 1);
  s = location.Finalize();

  Hierarchy product("productdim");
  s = product.AddLevel("product", {"P1", "P2"});
  s = product.Finalize();

  CubeSchema schema;
  s = schema.AddHierarchy(std::move(location));
  s = schema.AddHierarchy(std::move(product));
  auto graph = TimeSeriesGraph::Create(std::move(schema));
  Rng rng(seed);
  for (NodeId node : graph.value().base_nodes()) {
    const NodeAddress address = graph.value().AddressOf(node);
    const double city_scale = 5.0 + 4.0 * double(address.coords[0].value);
    const double product_scale = address.coords[1].value == 0 ? 1.0 : 2.5;
    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double season =
          1.0 + 0.25 * std::sin(2.0 * 3.14159265358979 * double(t) / 12.0);
      values[t] = city_scale * product_scale * season *
                  (1.0 + rng.Gaussian(0.0, noise));
      if (values[t] < 0.1) values[t] = 0.1;
    }
    s = graph.value().SetBaseSeries(node, TimeSeries(values));
  }
  s = graph.value().BuildAggregates();
  (void)s;
  return std::move(graph).value();
}

}  // namespace f2db::testing

#endif  // F2DB_TESTS_TESTING_TEST_CUBES_H_
