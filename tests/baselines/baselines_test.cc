#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/advisor_builder.h"
#include "baselines/bottom_up.h"
#include "baselines/combine.h"
#include "baselines/direct.h"
#include "baselines/greedy.h"
#include "baselines/top_down.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {}

  TimeSeriesGraph graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
};

TEST_F(BaselinesTest, DirectModelsEveryNode) {
  DirectBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().configuration.num_models(), graph_.num_nodes());
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    EXPECT_TRUE(
        outcome.value().configuration.assignment(node).scheme.IsDirect(node));
    EXPECT_LT(outcome.value().configuration.assignment(node).error, 1.0);
  }
}

TEST_F(BaselinesTest, BottomUpModelsBaseNodesOnly) {
  BottomUpBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().configuration.num_models(),
            graph_.num_base_nodes());
  // Aggregate nodes use multi-source schemes over base descendants.
  const auto& top = outcome.value().configuration.assignment(graph_.top_node());
  EXPECT_EQ(top.scheme.sources.size(), graph_.num_base_nodes());
  // Base nodes effectively forecast themselves.
  const NodeId base = graph_.base_nodes()[0];
  const auto& base_assignment = outcome.value().configuration.assignment(base);
  EXPECT_EQ(base_assignment.scheme, DerivationScheme::Direct(base));
}

TEST_F(BaselinesTest, TopDownSingleModel) {
  TopDownBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().configuration.num_models(), 1u);
  EXPECT_TRUE(outcome.value().configuration.HasModel(graph_.top_node()));
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    EXPECT_EQ(outcome.value().configuration.assignment(node).scheme,
              DerivationScheme::Single(graph_.top_node()));
  }
}

TEST_F(BaselinesTest, GreedySelectsSubsetWithLowError) {
  GreedyBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.value().configuration.num_models(), 0u);
  EXPECT_LE(outcome.value().configuration.num_models(), graph_.num_nodes());
  EXPECT_EQ(outcome.value().models_created, graph_.num_nodes());

  DirectBuilder direct;
  auto direct_outcome = direct.Build(evaluator_, factory_);
  ASSERT_TRUE(direct_outcome.ok());
  // Greedy has direct + derivation schemes available, so it cannot be
  // (meaningfully) worse than direct.
  EXPECT_LE(outcome.value().configuration.MeanError(),
            direct_outcome.value().configuration.MeanError() + 1e-6);
}

TEST_F(BaselinesTest, GreedyUsesTraditionalSchemesOnly) {
  GreedyBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  const ModelConfiguration& config = outcome.value().configuration;
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    const DerivationScheme& scheme = config.assignment(node).scheme;
    if (scheme.IsEmpty()) continue;
    if (scheme.sources.size() == 1) {
      // Direct or disaggregation from an ancestor: source must be the node
      // itself or a node with smaller or equal distance to the root.
      continue;
    }
    // Aggregation: sources must be exactly the children along a dimension.
    bool matches_child_set = false;
    for (const auto& [dim, children] : graph_.ChildSets(node)) {
      std::vector<NodeId> sorted_children = children;
      std::sort(sorted_children.begin(), sorted_children.end());
      std::vector<NodeId> sources = scheme.sources;
      std::sort(sources.begin(), sources.end());
      if (sources == sorted_children) matches_child_set = true;
    }
    EXPECT_TRUE(matches_child_set) << graph_.NodeName(node);
  }
}

TEST_F(BaselinesTest, CombineKeepsAllModelsAndReconciles) {
  CombineBuilder builder;
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().configuration.num_models(), graph_.num_nodes());
  EXPECT_LT(outcome.value().configuration.MeanError(), 0.5);
}

TEST_F(BaselinesTest, CombineRefusesOversizedGraphs) {
  CombineBuilder builder(/*max_base_series=*/4);
  auto outcome = builder.Build(evaluator_, factory_);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BaselinesTest, AdvisorBuilderExposesRunStats) {
  AdvisorOptions options;
  options.models_per_iteration = 4;
  options.stop.max_iterations = 10;
  AdvisorBuilder builder(options);
  EXPECT_EQ(builder.last_result(), nullptr);
  auto outcome = builder.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(builder.last_result(), nullptr);
  EXPECT_GT(builder.last_result()->iterations, 0u);
}

TEST_F(BaselinesTest, AllBuildersReportBuildSeconds) {
  DirectBuilder direct;
  TopDownBuilder top_down;
  BottomUpBuilder bottom_up;
  for (ConfigurationBuilder* builder :
       std::vector<ConfigurationBuilder*>{&direct, &top_down, &bottom_up}) {
    auto outcome = builder->Build(evaluator_, factory_);
    ASSERT_TRUE(outcome.ok()) << builder->name();
    EXPECT_GE(outcome.value().build_seconds, 0.0);
    EXPECT_GT(outcome.value().models_created, 0u);
  }
}

TEST_F(BaselinesTest, BaseDescendantsOfTopAreAllBaseNodes) {
  const auto leaves =
      baselines_internal::BaseDescendants(graph_, graph_.top_node());
  EXPECT_EQ(leaves.size(), graph_.num_base_nodes());
  const NodeId base = graph_.base_nodes()[0];
  EXPECT_EQ(baselines_internal::BaseDescendants(graph_, base),
            std::vector<NodeId>{base});
}

TEST_F(BaselinesTest, BaseDescendantsNoDuplicatesOnMultiDimNode) {
  // A node aggregated in BOTH dimensions reaches each leaf through several
  // paths; the helper must deduplicate.
  NodeAddress address;
  address.coords = {{1, 0}, {1, 0}};  // region R1, ALL products
  const NodeId node = graph_.NodeFor(address).value();
  const auto leaves = baselines_internal::BaseDescendants(graph_, node);
  EXPECT_EQ(leaves.size(), 4u);  // 2 cities x 2 products
  std::set<NodeId> unique(leaves.begin(), leaves.end());
  EXPECT_EQ(unique.size(), leaves.size());
}

TEST_F(BaselinesTest, TopDownErrorWorstOnHeterogeneousData) {
  // In the Figure-2 cube base series differ only by scale (shared shape),
  // so TD is fine; with strong per-series noise direct wins.
  const TimeSeriesGraph noisy = testing::MakeFigure2Cube(60, 0.5);
  ConfigurationEvaluator evaluator(noisy, 0.8);
  DirectBuilder direct;
  TopDownBuilder top_down;
  auto d = direct.Build(evaluator, factory_);
  auto t = top_down.Build(evaluator, factory_);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(t.ok());
  // Direct models every node and is at least competitive.
  EXPECT_LE(d.value().configuration.MeanError(),
            t.value().configuration.MeanError() + 0.05);
}

}  // namespace
}  // namespace f2db
