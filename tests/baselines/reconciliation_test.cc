// Properties of the Combine (optimal combination) reconciliation and of
// scheme coherence in the other baselines.

#include <gtest/gtest.h>

#include "baselines/bottom_up.h"
#include "baselines/combine.h"
#include "baselines/direct.h"
#include "testing/test_cubes.h"
#include "ts/accuracy.h"

namespace f2db {
namespace {

class ReconciliationTest : public ::testing::Test {
 protected:
  ReconciliationTest()
      : graph_(testing::MakeFigure2Cube(60, 0.1)),
        evaluator_(graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)) {}

  TimeSeriesGraph graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
};

TEST_F(ReconciliationTest, ReconciledForecastsAreCoherent) {
  CombineBuilder combine;
  auto outcome = combine.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  const auto& reconciled = combine.last_reconciled();
  ASSERT_EQ(reconciled.size(), graph_.num_nodes());

  // OLS reconciliation projects onto the coherent subspace: every parent's
  // reconciled forecast equals the sum of its children's, along EVERY
  // dimension, at every horizon step.
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    for (const auto& [dim, children] : graph_.ChildSets(node)) {
      for (std::size_t h = 0; h < evaluator_.test_length(); ++h) {
        double sum = 0.0;
        for (NodeId child : children) sum += reconciled[child][h];
        EXPECT_NEAR(reconciled[node][h], sum,
                    1e-6 * (1.0 + std::abs(sum)))
            << graph_.NodeName(node) << " dim " << dim << " h " << h;
      }
    }
  }
}

TEST_F(ReconciliationTest, ReconciliationBeatsWorstIndependentForecast) {
  // Reconciliation averages information across levels; its mean error
  // should not exceed the unreconciled direct approach by much (typically
  // it improves it).
  CombineBuilder combine;
  DirectBuilder direct;
  auto combined = combine.Build(evaluator_, factory_);
  auto independent = direct.Build(evaluator_, factory_);
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(independent.ok());
  EXPECT_LE(combined.value().configuration.MeanError(),
            independent.value().configuration.MeanError() + 0.01);
}

TEST_F(ReconciliationTest, BottomUpForecastsAreCoherentByConstruction) {
  BottomUpBuilder bottom_up;
  auto outcome = bottom_up.Build(evaluator_, factory_);
  ASSERT_TRUE(outcome.ok());
  const ModelConfiguration& config = outcome.value().configuration;

  // Derived forecast of a parent = k * sum of base forecasts with k = 1;
  // summing children's derived forecasts gives the same value because the
  // base-descendant multisets partition.
  for (NodeId node = 0; node < graph_.num_nodes(); ++node) {
    const auto& scheme = config.assignment(node).scheme;
    if (scheme.IsEmpty()) continue;
    const auto forecasts = config.ForecastsFor(scheme);
    ASSERT_FALSE(forecasts.empty());
    const double k = evaluator_.Weight(scheme.sources, node);
    EXPECT_NEAR(k, 1.0, 1e-9) << graph_.NodeName(node);
  }
}

TEST_F(ReconciliationTest, LastReconciledEmptyBeforeBuild) {
  CombineBuilder combine;
  EXPECT_TRUE(combine.last_reconciled().empty());
}

}  // namespace
}  // namespace f2db
