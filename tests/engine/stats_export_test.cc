// Prometheus text exposition tests: family naming, HELP/TYPE pairing, the
// rung-labelled degradation family, and the format's escaping rules.

#include "engine/stats_export.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"

namespace f2db {
namespace {

EngineStats MakeStats() {
  EngineStats stats;
  stats.queries = 42;
  stats.inserts = 7;
  stats.time_advances = 3;
  stats.reestimates = 2;
  stats.refit_failures = 1;
  stats.quarantines = 1;
  stats.degraded_rows_stale = 5;
  stats.degraded_rows_derived = 4;
  stats.degraded_rows_naive = 3;
  stats.total_query_seconds = 1.5;
  stats.total_maintenance_seconds = 0.25;
  return stats;
}

TEST(StatsExportTest, EveryCounterFamilyPresentWithHelpAndType) {
  const std::string text = MakeStats().ToPrometheusText();
  for (const char* name :
       {"f2db_queries_total", "f2db_inserts_total", "f2db_time_advances_total",
        "f2db_reestimates_total", "f2db_refit_failures_total",
        "f2db_quarantines_total", "f2db_degraded_rows_total",
        "f2db_query_seconds_total", "f2db_maintenance_seconds_total"}) {
    SCOPED_TRACE(name);
    EXPECT_NE(text.find(std::string("# HELP ") + name + " "),
              std::string::npos);
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " counter"),
              std::string::npos);
  }
}

TEST(StatsExportTest, SampleValuesRendered) {
  const std::string text = MakeStats().ToPrometheusText();
  EXPECT_NE(text.find("f2db_queries_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_inserts_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_query_seconds_total 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_maintenance_seconds_total 0.25\n"),
            std::string::npos);
}

TEST(StatsExportTest, DegradationRungsShareOneLabelledFamily) {
  const std::string text = MakeStats().ToPrometheusText();
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"stale\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"derived\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"naive\"} 3\n"),
            std::string::npos);
  // One TYPE line for the family, not one per rung.
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  const std::string needle = "# TYPE f2db_degraded_rows_total";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++type_lines;
    pos += needle.size();
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(StatsExportTest, FreshStatsRenderZeroes) {
  const std::string text = EngineStats{}.ToPrometheusText();
  EXPECT_NE(text.find("f2db_queries_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"stale\"} 0\n"),
            std::string::npos);
}

TEST(StatsExportTest, StorageFamiliesGoldenText) {
  // The storage-lifecycle families, pinned as one contiguous golden block:
  // renaming a family, reordering the exposition, or changing a HELP
  // string is a scrape-breaking change and must show up here.
  EngineStats stats = MakeStats();
  stats.segments_sealed = 4;
  stats.segment_records_sealed = 4096;
  stats.segments_live = 3;
  stats.segment_live_bytes = 9000;
  stats.compactions_completed = 4;
  stats.compaction_failures = 1;
  stats.retention_segments_deleted = 1;
  stats.retention_records_dropped = 1024;
  stats.segment_records_recovered = 2048;
  const std::string text = stats.ToPrometheusText();
  const char* golden =
      "# HELP f2db_segments_sealed_total Sealed segments written by this "
      "process.\n"
      "# TYPE f2db_segments_sealed_total counter\n"
      "f2db_segments_sealed_total 4\n"
      "# HELP f2db_segment_records_sealed_total Observations sealed into "
      "segments by this process.\n"
      "# TYPE f2db_segment_records_sealed_total counter\n"
      "f2db_segment_records_sealed_total 4096\n"
      "# HELP f2db_segments_live Sealed segments the current manifest "
      "references.\n"
      "# TYPE f2db_segments_live gauge\n"
      "f2db_segments_live 3\n"
      "# HELP f2db_segment_live_bytes On-disk bytes of the live "
      "sealed-segment chain.\n"
      "# TYPE f2db_segment_live_bytes gauge\n"
      "f2db_segment_live_bytes 9000\n"
      "# HELP f2db_compactions_completed_total Compactions that committed "
      "their manifest.\n"
      "# TYPE f2db_compactions_completed_total counter\n"
      "f2db_compactions_completed_total 4\n"
      "# HELP f2db_compaction_failures_total Compaction attempts that "
      "failed.\n"
      "# TYPE f2db_compaction_failures_total counter\n"
      "f2db_compaction_failures_total 1\n"
      "# HELP f2db_retention_segments_deleted_total Sealed segments deleted "
      "by retention.\n"
      "# TYPE f2db_retention_segments_deleted_total counter\n"
      "f2db_retention_segments_deleted_total 1\n"
      "# HELP f2db_retention_records_dropped_total Observations dropped by "
      "retention.\n"
      "# TYPE f2db_retention_records_dropped_total counter\n"
      "f2db_retention_records_dropped_total 1024\n"
      "# HELP f2db_segment_records_recovered_total Observations restored "
      "from sealed segments at open.\n"
      "# TYPE f2db_segment_records_recovered_total counter\n"
      "f2db_segment_records_recovered_total 2048\n";
  EXPECT_NE(text.find(golden), std::string::npos) << text;
}

TEST(StatsExportTest, ShardedStorageFamiliesCarryShardLabels) {
  EngineStats shard0;
  shard0.segments_sealed = 2;
  shard0.retention_records_dropped = 100;
  EngineStats shard1;
  shard1.segments_sealed = 3;
  shard1.retention_records_dropped = 50;
  EngineStats total;
  total.segments_sealed = 5;
  total.retention_records_dropped = 150;
  const std::string text = ShardedEngineStatsPrometheusText(
      {{"0", shard0}, {"1", shard1}}, total);
  // Per-shard samples labelled, followed by the unlabelled fleet total.
  EXPECT_NE(text.find("f2db_segments_sealed_total{shard=\"0\"} 2\n"
                      "f2db_segments_sealed_total{shard=\"1\"} 3\n"
                      "f2db_segments_sealed_total 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("f2db_retention_records_dropped_total{shard=\"0\"} 100\n"
                "f2db_retention_records_dropped_total{shard=\"1\"} 50\n"
                "f2db_retention_records_dropped_total 150\n"),
      std::string::npos)
      << text;
}

TEST(StatsExportTest, HelpEscapingBackslashAndNewline) {
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeHelp("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(PrometheusEscapeHelp("quote \" kept"), "quote \" kept");
}

TEST(StatsExportTest, LabelValueEscapingAddsQuote) {
  EXPECT_EQ(PrometheusEscapeLabelValue("stale"), "stale");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("two\nlines"), "two\\nlines");
}

TEST(StatsExportTest, AppendHelpersEscapeHelpText) {
  std::string out;
  AppendPrometheusCounter(&out, "x_total", "help with\nnewline", 3);
  EXPECT_NE(out.find("# HELP x_total help with\\nnewline\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE x_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("x_total 3\n"), std::string::npos);

  std::string gauge;
  AppendPrometheusGauge(&gauge, "depth", "queue depth", 8);
  EXPECT_NE(gauge.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(gauge.find("depth 8\n"), std::string::npos);
}

}  // namespace
}  // namespace f2db
