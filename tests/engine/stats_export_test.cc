// Prometheus text exposition tests: family naming, HELP/TYPE pairing, the
// rung-labelled degradation family, and the format's escaping rules.

#include "engine/stats_export.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"

namespace f2db {
namespace {

EngineStats MakeStats() {
  EngineStats stats;
  stats.queries = 42;
  stats.inserts = 7;
  stats.time_advances = 3;
  stats.reestimates = 2;
  stats.refit_failures = 1;
  stats.quarantines = 1;
  stats.degraded_rows_stale = 5;
  stats.degraded_rows_derived = 4;
  stats.degraded_rows_naive = 3;
  stats.total_query_seconds = 1.5;
  stats.total_maintenance_seconds = 0.25;
  return stats;
}

TEST(StatsExportTest, EveryCounterFamilyPresentWithHelpAndType) {
  const std::string text = MakeStats().ToPrometheusText();
  for (const char* name :
       {"f2db_queries_total", "f2db_inserts_total", "f2db_time_advances_total",
        "f2db_reestimates_total", "f2db_refit_failures_total",
        "f2db_quarantines_total", "f2db_degraded_rows_total",
        "f2db_query_seconds_total", "f2db_maintenance_seconds_total"}) {
    SCOPED_TRACE(name);
    EXPECT_NE(text.find(std::string("# HELP ") + name + " "),
              std::string::npos);
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " counter"),
              std::string::npos);
  }
}

TEST(StatsExportTest, SampleValuesRendered) {
  const std::string text = MakeStats().ToPrometheusText();
  EXPECT_NE(text.find("f2db_queries_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_inserts_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_query_seconds_total 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_maintenance_seconds_total 0.25\n"),
            std::string::npos);
}

TEST(StatsExportTest, DegradationRungsShareOneLabelledFamily) {
  const std::string text = MakeStats().ToPrometheusText();
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"stale\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"derived\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"naive\"} 3\n"),
            std::string::npos);
  // One TYPE line for the family, not one per rung.
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  const std::string needle = "# TYPE f2db_degraded_rows_total";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++type_lines;
    pos += needle.size();
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(StatsExportTest, FreshStatsRenderZeroes) {
  const std::string text = EngineStats{}.ToPrometheusText();
  EXPECT_NE(text.find("f2db_queries_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("f2db_degraded_rows_total{rung=\"stale\"} 0\n"),
            std::string::npos);
}

TEST(StatsExportTest, HelpEscapingBackslashAndNewline) {
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeHelp("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(PrometheusEscapeHelp("quote \" kept"), "quote \" kept");
}

TEST(StatsExportTest, LabelValueEscapingAddsQuote) {
  EXPECT_EQ(PrometheusEscapeLabelValue("stale"), "stale");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("two\nlines"), "two\\nlines");
}

TEST(StatsExportTest, AppendHelpersEscapeHelpText) {
  std::string out;
  AppendPrometheusCounter(&out, "x_total", "help with\nnewline", 3);
  EXPECT_NE(out.find("# HELP x_total help with\\nnewline\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE x_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("x_total 3\n"), std::string::npos);

  std::string gauge;
  AppendPrometheusGauge(&gauge, "depth", "queue depth", 8);
  EXPECT_NE(gauge.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(gauge.find("depth 8\n"), std::string::npos);
}

}  // namespace
}  // namespace f2db
