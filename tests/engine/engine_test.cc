#include "engine/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "baselines/advisor_builder.h"
#include "baselines/bottom_up.h"
#include "testing/test_cubes.h"
#include "ts/accuracy.h"

namespace f2db {
namespace {

/// Builds an engine over the Figure-2 cube with an advisor configuration.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)),
        engine_(testing::MakeFigure2Cube(60, 0.05)) {
    AdvisorOptions options;
    options.models_per_iteration = 4;
    options.stop.max_iterations = 12;
    AdvisorBuilder builder(options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    config_ = std::move(outcome.value().configuration);
    EXPECT_TRUE(engine_.LoadConfiguration(config_, evaluator_).ok());
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  F2dbEngine engine_;
  ModelConfiguration config_;
};

TEST_F(EngineTest, ResolveNodeDefaultsToAll) {
  auto node = engine_.ResolveNode({});
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node.value(), engine_.graph().top_node());
}

TEST_F(EngineTest, ResolveNodeByLevels) {
  auto node = engine_.ResolveNode({{"city", "C3"}, {"product", "P1"}});
  ASSERT_TRUE(node.ok());
  const NodeAddress address = engine_.graph().AddressOf(node.value());
  EXPECT_EQ(address.coords[0].level, 0u);
  EXPECT_EQ(address.coords[0].value, 2u);
  // Region-level query resolves to the region node.
  auto region = engine_.ResolveNode({{"region", "R2"}});
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(engine_.graph().AddressOf(region.value()).coords[0].level, 1u);
}

TEST_F(EngineTest, ResolveNodeRejectsUnknownLevelOrValue) {
  EXPECT_FALSE(engine_.ResolveNode({{"country", "X"}}).ok());
  EXPECT_FALSE(engine_.ResolveNode({{"city", "C9"}}).ok());
}

TEST_F(EngineTest, ExecuteSqlReturnsHorizonRows) {
  auto result = engine_.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts WHERE region = 'R1' GROUP BY time "
      "AS OF now() + '4'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 4u);
  const std::int64_t now = engine_.graph().series(result.value().node).end_time();
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(result.value().rows[h].time, now + static_cast<std::int64_t>(h));
    EXPECT_GT(result.value().rows[h].value, 0.0);
  }
  EXPECT_EQ(engine_.stats().queries, 1u);
}

TEST_F(EngineTest, ForecastsAreReasonablyAccurate) {
  // Compare a one-step engine forecast of the top node to the actual level
  // of the (smooth) series.
  auto forecast = engine_.ForecastNode(engine_.graph().top_node(), 1);
  ASSERT_TRUE(forecast.ok());
  const TimeSeries& top = engine_.graph().series(engine_.graph().top_node());
  const double last = top[top.size() - 1];
  EXPECT_NEAR(forecast.value()[0], last, 0.3 * last);
}

TEST_F(EngineTest, UncoveredNodesGetFallbackScheme) {
  // Every node must be answerable after LoadConfiguration.
  for (NodeId node = 0; node < engine_.graph().num_nodes(); ++node) {
    EXPECT_TRUE(engine_.ForecastNode(node, 1).ok())
        << engine_.graph().NodeName(node);
  }
}

TEST_F(EngineTest, InsertBatchingAdvancesOnlyWhenComplete) {
  const std::int64_t t = engine_.graph().series(0).end_time();
  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  for (std::size_t i = 0; i + 1 < bases.size(); ++i) {
    ASSERT_TRUE(engine_.InsertFact(bases[i], t, 5.0).ok());
    EXPECT_EQ(engine_.stats().time_advances, 0u);
  }
  EXPECT_EQ(engine_.pending_inserts(), bases.size() - 1);
  ASSERT_TRUE(engine_.InsertFact(bases.back(), t, 5.0).ok());
  EXPECT_EQ(engine_.stats().time_advances, 1u);
  EXPECT_EQ(engine_.pending_inserts(), 0u);
  EXPECT_EQ(engine_.graph().series(0).end_time(), t + 1);
}

TEST_F(EngineTest, OutOfOrderBatchesApplyInSequence) {
  const std::int64_t t = engine_.graph().series(0).end_time();
  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  // Fill time t+1 completely first: nothing advances (t missing).
  for (NodeId base : bases) {
    ASSERT_TRUE(engine_.InsertFact(base, t + 1, 7.0).ok());
  }
  EXPECT_EQ(engine_.stats().time_advances, 0u);
  // Now complete time t: both advance in order.
  for (NodeId base : bases) {
    ASSERT_TRUE(engine_.InsertFact(base, t, 6.0).ok());
  }
  EXPECT_EQ(engine_.stats().time_advances, 2u);
  const TimeSeries& top = engine_.graph().series(engine_.graph().top_node());
  EXPECT_NEAR(top[top.size() - 2], 6.0 * bases.size(), 1e-9);
  EXPECT_NEAR(top[top.size() - 1], 7.0 * bases.size(), 1e-9);
}

TEST_F(EngineTest, InsertValidation) {
  const std::int64_t t = engine_.graph().series(0).end_time();
  const NodeId base = engine_.graph().base_nodes()[0];
  EXPECT_FALSE(engine_.InsertFact(engine_.graph().top_node(), t, 1.0).ok());
  EXPECT_FALSE(engine_.InsertFact(base, t - 5, 1.0).ok());  // behind frontier
  ASSERT_TRUE(engine_.InsertFact(base, t, 1.0).ok());
  EXPECT_FALSE(engine_.InsertFact(base, t, 2.0).ok());  // duplicate
}

TEST_F(EngineTest, InsertByValueNames) {
  const std::int64_t t = engine_.graph().series(0).end_time();
  EXPECT_TRUE(engine_.InsertFact({"C1", "P1"}, t, 3.0).ok());
  EXPECT_FALSE(engine_.InsertFact({"C9", "P1"}, t, 3.0).ok());
  EXPECT_FALSE(engine_.InsertFact({"C1"}, t, 3.0).ok());
}

TEST_F(EngineTest, MaintenanceKeepsAggregatesConsistent) {
  const std::int64_t t = engine_.graph().series(0).end_time();
  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  for (std::size_t i = 0; i < bases.size(); ++i) {
    ASSERT_TRUE(
        engine_.InsertFact(bases[i], t, static_cast<double>(i + 1)).ok());
  }
  // Check an intermediate aggregate: region R1 x product P1 = bases C1,C2.
  auto node = engine_.ResolveNode({{"region", "R1"}, {"product", "P1"}});
  ASSERT_TRUE(node.ok());
  const TimeSeries& series = engine_.graph().series(node.value());
  double expected = 0.0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const NodeAddress address = engine_.graph().AddressOf(bases[i]);
    if (address.coords[0].value <= 1 && address.coords[1].value == 0) {
      expected += static_cast<double>(i + 1);
    }
  }
  EXPECT_NEAR(series[series.size() - 1], expected, 1e-9);
}

TEST_F(EngineTest, ThresholdInvalidationTriggersLazyReestimation) {
  // Options are immutable after construction: build a dedicated engine.
  EngineOptions options;
  options.reestimate_after_updates = 2;
  F2dbEngine engine(testing::MakeFigure2Cube(60, 0.05), options);
  ASSERT_TRUE(engine.LoadConfiguration(config_, evaluator_).ok());
  const std::vector<NodeId> bases = engine.graph().base_nodes();
  for (int period = 0; period < 3; ++period) {
    const std::int64_t t = engine.graph().series(0).end_time();
    for (NodeId base : bases) {
      ASSERT_TRUE(engine.InsertFact(base, t, 10.0).ok());
    }
  }
  EXPECT_EQ(engine.stats().reestimates, 0u);  // lazy: nothing queried yet
  ASSERT_TRUE(engine.ForecastNode(engine.graph().top_node(), 1).ok());
  EXPECT_GT(engine.stats().reestimates, 0u);
  // A second query does not re-estimate again.
  const std::size_t after_first = engine.stats().reestimates;
  ASSERT_TRUE(engine.ForecastNode(engine.graph().top_node(), 1).ok());
  EXPECT_EQ(engine.stats().reestimates, after_first);
}

TEST_F(EngineTest, PinnedSnapshotGivesRepeatableReads) {
  const NodeId top = engine_.graph().top_node();
  const SnapshotPtr snap = engine_.snapshot();
  auto before = engine_.ForecastNode(snap, top, 3);
  ASSERT_TRUE(before.ok());

  // Advance one full period with very different values.
  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  const std::int64_t t = engine_.graph().series(0).end_time();
  for (NodeId base : bases) {
    ASSERT_TRUE(engine_.InsertFact(base, t, 500.0).ok());
  }

  // The pinned snapshot still answers exactly as before the advance...
  auto pinned = engine_.ForecastNode(snap, top, 3);
  ASSERT_TRUE(pinned.ok());
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_DOUBLE_EQ(pinned.value()[h], before.value()[h]);
  }
  // ...and its graph frontier is still the pre-advance one.
  EXPECT_EQ(snap->graph->series(top).end_time(), engine_.graph().series(top).end_time() - 1);
}

TEST_F(EngineTest, MaintenancePublishesNewSnapshotVersions) {
  const SnapshotPtr first = engine_.snapshot();
  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  const std::int64_t t = engine_.graph().series(0).end_time();
  // Buffered (incomplete) inserts publish nothing.
  ASSERT_TRUE(engine_.InsertFact(bases[0], t, 5.0).ok());
  EXPECT_EQ(engine_.snapshot()->version, first->version);
  for (std::size_t i = 1; i < bases.size(); ++i) {
    ASSERT_TRUE(engine_.InsertFact(bases[i], t, 5.0).ok());
  }
  const SnapshotPtr second = engine_.snapshot();
  EXPECT_GT(second->version, first->version);
  // The old snapshot's data is untouched by the advance.
  EXPECT_EQ(first->graph->series(0).end_time(), t);
  EXPECT_EQ(second->graph->series(0).end_time(), t + 1);
}

TEST_F(EngineTest, FailedCatalogLoadLeavesEngineUsable) {
  const std::size_t models_before = engine_.num_models();
  ConfigurationCatalog bad;
  SchemeRow row;
  row.target = 0;
  row.sources = {1};  // no model stored for node 1
  bad.scheme_table().push_back(row);
  EXPECT_FALSE(engine_.LoadCatalog(bad).ok());
  // The previously published configuration is still fully live.
  EXPECT_EQ(engine_.num_models(), models_before);
  EXPECT_TRUE(engine_.ForecastNode(engine_.graph().top_node(), 1).ok());
}

TEST_F(EngineTest, ParallelMaintenanceMatchesSerial) {
  EngineOptions parallel_options;
  parallel_options.maintenance_threads = 4;
  F2dbEngine parallel_engine(testing::MakeFigure2Cube(60, 0.05),
                             parallel_options);
  ASSERT_TRUE(parallel_engine.LoadConfiguration(config_, evaluator_).ok());

  const std::vector<NodeId> bases = engine_.graph().base_nodes();
  for (int period = 0; period < 2; ++period) {
    const std::int64_t t = engine_.graph().series(0).end_time();
    for (std::size_t i = 0; i < bases.size(); ++i) {
      const double v = 10.0 + static_cast<double>(i + 1);
      ASSERT_TRUE(engine_.InsertFact(bases[i], t, v).ok());
      ASSERT_TRUE(parallel_engine.InsertFact(bases[i], t, v).ok());
    }
  }
  for (NodeId node : {engine_.graph().top_node(), bases[0]}) {
    auto serial = engine_.ForecastNode(node, 3);
    auto parallel = parallel_engine.ForecastNode(node, 3);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    for (std::size_t h = 0; h < 3; ++h) {
      EXPECT_NEAR(serial.value()[h], parallel.value()[h], 1e-9);
    }
  }
}

TEST_F(EngineTest, CatalogExportLoadRoundTrip) {
  auto catalog = engine_.ExportCatalog();
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog.value().model_table().size(), engine_.num_models());

  F2dbEngine other(testing::MakeFigure2Cube(60, 0.05));
  ASSERT_TRUE(other.LoadCatalog(catalog.value()).ok());
  EXPECT_EQ(other.num_models(), engine_.num_models());
  // Forecasts agree across the round trip.
  for (NodeId node : {engine_.graph().top_node(), engine_.graph().base_nodes()[0]}) {
    auto f1 = engine_.ForecastNode(node, 3);
    auto f2 = other.ForecastNode(node, 3);
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());
    for (std::size_t h = 0; h < 3; ++h) {
      EXPECT_NEAR(f1.value()[h], f2.value()[h], 1e-6);
    }
  }
}

TEST_F(EngineTest, CatalogFilePersistence) {
  auto catalog = engine_.ExportCatalog();
  ASSERT_TRUE(catalog.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_catalog_test.txt")
          .string();
  ASSERT_TRUE(catalog.value().Save(path).ok());

  ConfigurationCatalog loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.scheme_table().size(), catalog.value().scheme_table().size());
  EXPECT_EQ(loaded.model_table().size(), catalog.value().model_table().size());

  F2dbEngine other(testing::MakeFigure2Cube(60, 0.05));
  EXPECT_TRUE(other.LoadCatalog(loaded).ok());
  std::remove(path.c_str());
}

TEST_F(EngineTest, LoadCatalogRejectsDanglingScheme) {
  ConfigurationCatalog catalog;
  SchemeRow row;
  row.target = 0;
  row.sources = {1};  // no model stored for node 1
  catalog.scheme_table().push_back(row);
  F2dbEngine other(testing::MakeFigure2Cube(60, 0.05));
  EXPECT_FALSE(other.LoadCatalog(catalog).ok());
}

TEST(Catalog, LoadRejectsGarbageFiles) {
  ConfigurationCatalog catalog;
  EXPECT_FALSE(catalog.Load("/nonexistent/catalog.txt").ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_bad_catalog.txt")
          .string();
  {
    std::ofstream out(path);
    out << "not a catalog\n";
  }
  EXPECT_FALSE(catalog.Load(path).ok());
  std::remove(path.c_str());
}

TEST(Engine, LoadConfigurationRejectsMismatchedGraph) {
  const TimeSeriesGraph small = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(small, 0.8);
  ModelConfiguration config(small.num_nodes());
  F2dbEngine engine(testing::MakeFigure2Cube(60));
  EXPECT_FALSE(engine.LoadConfiguration(config, evaluator).ok());
}

TEST(Engine, LoadConfigurationRejectsEmptyConfig) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(40);
  ConfigurationEvaluator evaluator(graph, 0.8);
  ModelConfiguration config(graph.num_nodes());
  F2dbEngine engine(testing::MakeRegionCube(40));
  EXPECT_FALSE(engine.LoadConfiguration(config, evaluator).ok());
}

TEST(Engine, BottomUpConfigurationServesAggregateQueries) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.2);
  ConfigurationEvaluator evaluator(graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(4));
  BottomUpBuilder builder;
  auto outcome = builder.Build(evaluator, factory);
  ASSERT_TRUE(outcome.ok());
  F2dbEngine engine(testing::MakeRegionCube(48, 0.2));
  ASSERT_TRUE(
      engine.LoadConfiguration(outcome.value().configuration, evaluator).ok());
  auto result = engine.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '2'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

}  // namespace
}  // namespace f2db
