// Tests for the statement dialect extensions (INSERT / EXPLAIN), the plan
// inspection API, workload-aware weights, and engine interval forecasts.

#include <gtest/gtest.h>

#include "baselines/advisor_builder.h"
#include "engine/engine.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

TEST(StatementParser, SelectStatement) {
  auto s = ParseStatement(
      "SELECT time, sales FROM facts WHERE city = 'C1' AS OF now() + '2'");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().kind, Statement::Kind::kForecast);
  EXPECT_EQ(s.value().forecast.horizon, 2u);
}

TEST(StatementParser, ExplainStatement) {
  auto s = ParseStatement(
      "EXPLAIN SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() "
      "+ '3'");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().kind, Statement::Kind::kExplain);
  EXPECT_TRUE(s.value().forecast.aggregate);
}

TEST(StatementParser, InsertStatement) {
  auto s = ParseStatement("INSERT INTO facts VALUES ('C1', 'P2', 60, 12.5)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().kind, Statement::Kind::kInsert);
  EXPECT_EQ(s.value().insert.base_values,
            (std::vector<std::string>{"C1", "P2"}));
  EXPECT_EQ(s.value().insert.time, 60);
  EXPECT_DOUBLE_EQ(s.value().insert.value, 12.5);
}

TEST(StatementParser, InsertNegativeValue) {
  auto s = ParseStatement("INSERT INTO facts VALUES ('C1', 10, -3.25)");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.value().insert.value, -3.25);
}

TEST(StatementParser, InsertRejectsMalformed) {
  EXPECT_FALSE(ParseStatement("INSERT INTO facts VALUES (10, 12.5)").ok());
  EXPECT_FALSE(
      ParseStatement("INSERT INTO facts VALUES ('C1', 10)").ok());
  EXPECT_FALSE(
      ParseStatement("INSERT INTO facts VALUES ('C1', 10, 1.5) extra").ok());
  EXPECT_FALSE(ParseStatement("INSERT facts VALUES ('C1', 10, 1.5)").ok());
}

TEST(StatementParser, KeywordsCaseInsensitive) {
  EXPECT_TRUE(
      ParseStatement("insert into facts values ('C1', 'P1', 5, 1.0)").ok());
  EXPECT_TRUE(ParseStatement(
                  "explain select time, x from f as of now() + '1'")
                  .ok());
}

class StatementEngineTest : public ::testing::Test {
 protected:
  StatementEngineTest()
      : evaluator_graph_(testing::MakeFigure2Cube(60, 0.05)),
        evaluator_(evaluator_graph_, 0.8),
        factory_(ModelSpec::TripleExponentialSmoothing(12)),
        engine_(testing::MakeFigure2Cube(60, 0.05)) {
    AdvisorOptions options;
    options.models_per_iteration = 4;
    options.stop.max_iterations = 12;
    AdvisorBuilder builder(options);
    auto outcome = builder.Build(evaluator_, factory_);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(
        engine_.LoadConfiguration(outcome.value().configuration, evaluator_)
            .ok());
  }

  TimeSeriesGraph evaluator_graph_;
  ConfigurationEvaluator evaluator_;
  ModelFactory factory_;
  F2dbEngine engine_;
};

TEST_F(StatementEngineTest, ExplainDescribesPlan) {
  auto query = ParseForecastQuery(
      "SELECT time, SUM(sales) FROM facts WHERE region = 'R2' GROUP BY time "
      "AS OF now() + '5'");
  ASSERT_TRUE(query.ok());
  auto plan = engine_.Explain(query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().horizon, 5u);
  EXPECT_FALSE(plan.value().sources.empty());
  EXPECT_GT(plan.value().weight, 0.0);
  EXPECT_EQ(plan.value().source_models.size(), plan.value().sources.size());
  EXPECT_NE(plan.value().node_name.find("region=R2"), std::string::npos);
}

TEST_F(StatementEngineTest, ExecuteStatementTextSelect) {
  auto text = engine_.ExecuteStatementText(
      "SELECT time, sales FROM facts WHERE city = 'C1' AND product = 'P1' "
      "AS OF now() + '2'");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("-- node:"), std::string::npos);
  EXPECT_NE(text.value().find("60 | "), std::string::npos);
  EXPECT_NE(text.value().find("61 | "), std::string::npos);
}

TEST_F(StatementEngineTest, ExecuteStatementTextInsertAndExplain) {
  auto insert = engine_.ExecuteStatementText(
      "INSERT INTO facts VALUES ('C1', 'P1', 60, 9.5)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_NE(insert.value().find("INSERT ok"), std::string::npos);
  EXPECT_EQ(engine_.pending_inserts(), 1u);

  auto explain = engine_.ExecuteStatementText(
      "EXPLAIN SELECT time, sales FROM facts WHERE city = 'C1' AND product "
      "= 'P1' AS OF now() + '1'");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("Forecast Query Plan"), std::string::npos);
}

TEST_F(StatementEngineTest, ExecuteStatementTextReportsErrors) {
  EXPECT_FALSE(engine_.ExecuteStatementText("garbage").ok());
  EXPECT_FALSE(engine_
                   .ExecuteStatementText(
                       "INSERT INTO facts VALUES ('NOPE', 'P1', 60, 1.0)")
                   .ok());
}

TEST_F(StatementEngineTest, IntervalForecastsBracketPointForecast) {
  const NodeId top = engine_.graph().top_node();
  auto intervals = engine_.ForecastNodeWithIntervals(top, 4, 0.9);
  ASSERT_TRUE(intervals.ok()) << intervals.status().ToString();
  auto points = engine_.ForecastNode(top, 4);
  ASSERT_TRUE(points.ok());
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_NEAR(intervals.value()[h].point, points.value()[h], 1e-9);
    EXPECT_LT(intervals.value()[h].lower, intervals.value()[h].point);
    EXPECT_GT(intervals.value()[h].upper, intervals.value()[h].point);
  }
  // Bands widen with the horizon.
  EXPECT_GE(intervals.value()[3].upper - intervals.value()[3].lower,
            intervals.value()[0].upper - intervals.value()[0].lower - 1e-9);
}

TEST_F(StatementEngineTest, WithIntervalsClause) {
  auto result = engine_.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3' "
      "WITH INTERVALS 0.9");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  for (const ForecastRow& row : result.value().rows) {
    EXPECT_TRUE(row.has_interval);
    EXPECT_LT(row.lower, row.value);
    EXPECT_GT(row.upper, row.value);
  }
  // Without the clause, no interval fields are set.
  auto plain = engine_.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '1'");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().rows[0].has_interval);
}

TEST_F(StatementEngineTest, WithIntervalsDefaultConfidence) {
  auto query = ParseForecastQuery(
      "SELECT time, sales FROM facts WHERE city = 'C1' AND product = 'P1' "
      "AS OF now() + '2' WITH INTERVALS");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query.value().with_intervals);
  EXPECT_DOUBLE_EQ(query.value().confidence, 0.95);
}

TEST(QueryParser, WithIntervalsValidation) {
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f AS OF now() + '1' WITH INTERVALS "
                   "1.5")
                   .ok());
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f AS OF now() + '1' WITH bogus")
                   .ok());
  // ToString round trip keeps the clause.
  ForecastQuery q;
  q.measure = "x";
  q.with_intervals = true;
  q.confidence = 0.8;
  auto reparsed = ParseForecastQuery(q.ToString());
  ASSERT_TRUE(reparsed.ok()) << q.ToString();
  EXPECT_TRUE(reparsed.value().with_intervals);
  EXPECT_DOUBLE_EQ(reparsed.value().confidence, 0.8);
}

TEST_F(StatementEngineTest, IntervalsSurviveCatalogRoundTrip) {
  // The residual variances feeding the intervals must be part of the
  // serialized model state.
  auto catalog = engine_.ExportCatalog();
  ASSERT_TRUE(catalog.ok());
  F2dbEngine other(testing::MakeFigure2Cube(60, 0.05));
  ASSERT_TRUE(other.LoadCatalog(catalog.value()).ok());
  const NodeId top = engine_.graph().top_node();
  auto before = engine_.ForecastNodeWithIntervals(top, 3);
  auto after = other.ForecastNodeWithIntervals(top, 3);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_NEAR(before.value()[h].lower, after.value()[h].lower, 1e-6);
    EXPECT_NEAR(before.value()[h].upper, after.value()[h].upper, 1e-6);
  }
}

TEST(NodeWeights, WeightedErrorFavorsWeightedNodes) {
  const TimeSeriesGraph graph = testing::MakeRegionCube(48, 0.5);
  ModelConfiguration config(graph.num_nodes());
  // Node 0 error 0.5, everything else perfect.
  NodeAssignment bad;
  bad.error = 0.5;
  config.set_assignment(graph.base_nodes()[0], bad);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (n == graph.base_nodes()[0]) continue;
    NodeAssignment good;
    good.error = 0.0;
    config.set_assignment(n, good);
  }
  const double uniform = config.MeanError();
  std::vector<double> weights(graph.num_nodes(), 1.0);
  weights[graph.base_nodes()[0]] = 10.0;
  ASSERT_TRUE(config.SetNodeWeights(weights).ok());
  EXPECT_GT(config.MeanError(), uniform);  // bad node counts more now
  ASSERT_TRUE(config.SetNodeWeights({}).ok());
  EXPECT_DOUBLE_EQ(config.MeanError(), uniform);
}

TEST(NodeWeights, Validation) {
  ModelConfiguration config(3);
  EXPECT_FALSE(config.SetNodeWeights({1.0}).ok());
  EXPECT_FALSE(config.SetNodeWeights({1.0, -1.0, 1.0}).ok());
  EXPECT_FALSE(config.SetNodeWeights({0.0, 0.0, 0.0}).ok());
  EXPECT_TRUE(config.SetNodeWeights({1.0, 2.0, 3.0}).ok());
}

TEST(NodeWeights, AdvisorPrioritizesWeightedRegion) {
  // Give all weight to the base nodes: the advisor should achieve a better
  // weighted (base-node) error than a run that optimizes the uniform mean.
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(60, 0.3);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));

  AdvisorOptions weighted_options;
  weighted_options.models_per_iteration = 4;
  weighted_options.stop.max_iterations = 10;
  weighted_options.node_weights.assign(graph.num_nodes(), 0.01);
  for (NodeId base : graph.base_nodes()) {
    weighted_options.node_weights[base] = 1.0;
  }
  ModelConfigurationAdvisor advisor(graph, factory, weighted_options);
  auto result = advisor.Run();
  ASSERT_TRUE(result.ok());

  // Weighted mean focuses on base nodes; verify they are mostly covered.
  double base_error = 0.0;
  for (NodeId base : graph.base_nodes()) {
    base_error += result.value().configuration.assignment(base).error;
  }
  base_error /= static_cast<double>(graph.num_base_nodes());
  EXPECT_LT(base_error, 0.2);
}

}  // namespace
}  // namespace f2db
