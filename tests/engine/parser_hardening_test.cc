// Untrusted-input hardening for the statement parser.
//
// The wire protocol hands raw network bytes to ParseStatement /
// ParseForecastQuery, so every malformed input must come back as a Status —
// never a throw, crash, or unbounded allocation. These tests sweep the
// hostile shapes the serving layer is exposed to: truncations, oversized
// statements, embedded NULs, binary garbage, and structurally absurd but
// lexable statements.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "common/rng.h"
#include "engine/query.h"

namespace f2db {
namespace {

constexpr char kValidQuery[] =
    "SELECT time, SUM(sales) FROM facts WHERE city = 'C1' AND product = 'P2' "
    "GROUP BY time AS OF now() + '3' WITH INTERVALS 0.9";
constexpr char kValidInsert[] =
    "INSERT INTO facts VALUES ('C1', 'P1', 60, 12.5)";

TEST(ParserHardeningTest, EveryTruncationOfAValidQueryReturnsStatus) {
  // A few prefixes are themselves complete statements (the WITH INTERVALS
  // tail is optional); every other truncation must fail with a clean
  // InvalidArgument — never a crash or an empty message.
  const std::string full = kValidQuery;
  std::size_t failed = 0;
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string prefix = full.substr(0, len);
    SCOPED_TRACE("prefix length " + std::to_string(len));
    auto result = ParseStatement(prefix);
    if (result.ok()) continue;
    ++failed;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(result.status().message().empty());
  }
  EXPECT_GE(failed, full.size() - 5);
}

TEST(ParserHardeningTest, EveryTruncationOfAValidInsertReturnsStatus) {
  const std::string full = kValidInsert;
  for (std::size_t len = 0; len < full.size(); ++len) {
    auto result = ParseStatement(full.substr(0, len));
    EXPECT_FALSE(result.ok());
  }
}

TEST(ParserHardeningTest, OversizedStatementRejectedBeforeLexing) {
  // 1 MiB of valid-looking SQL text: rejected by the size guard, fast.
  std::string huge = "SELECT time, sales FROM facts WHERE city = '";
  huge.append(1 << 20, 'A');
  huge += "' AS OF now() + '1'";
  auto result = ParseStatement(huge);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos);

  auto forecast = ParseForecastQuery(huge);
  EXPECT_FALSE(forecast.ok());
}

TEST(ParserHardeningTest, StatementAtTheSizeLimitStillParses) {
  // Just under 64 KiB: pad the city value; must parse fine.
  std::string padded = "SELECT time, sales FROM facts WHERE city = '";
  const std::string tail = "' AS OF now() + '1'";
  padded.append(64 * 1024 - padded.size() - tail.size(), 'A');
  padded += tail;
  ASSERT_EQ(padded.size(), 64u * 1024u);
  EXPECT_TRUE(ParseStatement(padded).ok());
}

TEST(ParserHardeningTest, EmbeddedNulBytesRejectedPrintably) {
  std::string with_nul = "SELECT time, sales";
  with_nul.push_back('\0');
  with_nul += " FROM facts AS OF now() + '1'";
  auto result = ParseStatement(with_nul);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("0x00"), std::string::npos);
  // The message itself contains no raw control bytes.
  for (const char c : result.status().message()) {
    EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c)) || c == ' ');
  }
}

TEST(ParserHardeningTest, NulInsideQuotedStringIsPreservedNotFatal) {
  // Inside a quoted literal a NUL is data, not syntax; the statement parses
  // and downstream node resolution simply finds no such member.
  std::string sql = "SELECT time, sales FROM facts WHERE city = 'C";
  sql.push_back('\0');
  sql += "1' AS OF now() + '1'";
  auto result = ParseStatement(sql);
  EXPECT_TRUE(result.ok());
}

TEST(ParserHardeningTest, BinaryGarbageNeverCrashes) {
  Rng rng(2024);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const std::size_t len =
        static_cast<std::size_t>(rng.UniformInt(0, 256));
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    auto result = ParseStatement(garbage);
    if (!result.ok()) {
      EXPECT_NE(result.status().code(), StatusCode::kInternal);
    }
  }
}

TEST(ParserHardeningTest, MutatedValidQueriesNeverCrash) {
  Rng rng(7);
  const std::string base = kValidQuery;
  for (int round = 0; round < 500; ++round) {
    std::string mutated = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(1, 255));
    }
    (void)ParseStatement(mutated);  // must return, never throw or crash
  }
}

TEST(ParserHardeningTest, HugeHorizonsRejected) {
  EXPECT_FALSE(
      ParseStatement("SELECT time, s FROM facts AS OF now() + '100001'").ok());
  EXPECT_FALSE(
      ParseStatement(
          "SELECT time, s FROM facts AS OF now() + '99999999999999999999'")
          .ok());
  EXPECT_TRUE(
      ParseStatement("SELECT time, s FROM facts AS OF now() + '100000'").ok());
}

TEST(ParserHardeningTest, DegenerateNumericLiteralsReturnStatus) {
  EXPECT_FALSE(
      ParseStatement("INSERT INTO facts VALUES ('C1', 1.2.3, 5)").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO facts VALUES ('C1', 60, )").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO facts VALUES ()").ok());
  EXPECT_FALSE(
      ParseStatement(
          "SELECT time, s FROM facts AS OF now() + '1' WITH INTERVALS 1.0")
          .ok());
  EXPECT_FALSE(
      ParseStatement(
          "SELECT time, s FROM facts AS OF now() + '1' WITH INTERVALS 0")
          .ok());
}

TEST(ParserHardeningTest, PathologicallyLongFilterChainsBoundedBySizeCap) {
  // Thousands of AND clauses: either parses (it is grammatical) or hits the
  // byte cap — both without recursion or quadratic blowup.
  std::string sql = "SELECT time, sales FROM facts WHERE a = 'v'";
  for (int i = 0; i < 3000; ++i) sql += " AND a = 'v'";
  sql += " AS OF now() + '1'";
  auto result = ParseStatement(sql);
  if (result.ok()) {
    EXPECT_EQ(result.value().forecast.filters.size(), 3001u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParserHardeningTest, UnterminatedAndNestedQuotes) {
  EXPECT_FALSE(
      ParseStatement("SELECT time, s FROM facts WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseStatement("'").ok());
  EXPECT_FALSE(ParseStatement("'''''''''''''''''''''''''").ok());
}

}  // namespace
}  // namespace f2db
