// Checkpoint format tests: round-trip, CRC/version validation, atomic
// write semantics under fault injection, and a golden text pinning v1.

#include "engine/checkpoint.h"

#include <unistd.h>

#include <fstream>
#include <string>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace f2db {
namespace {

CheckpointState SampleState() {
  CheckpointState state;
  state.wal_epoch = 2;
  state.inserts = 4;
  state.time_advances = 1;
  state.base_start_time = 0;
  state.base_series = {{0, {1.0, 2.0}}, {1, {3.0, 4.5}}};
  state.schemes = {{2, {0, 1}}};
  CheckpointModel model;
  model.node = 0;
  model.payload = "mean|n=2|sum=3";
  state.models = {model};
  state.pending = {{2, 0, 9.25}};
  return state;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/f2db_ckpt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    failpoint::DisableAll();
    ::unlink(CheckpointPath(dir_).c_str());
    ::unlink((CheckpointPath(dir_) + ".tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

TEST_F(CheckpointTest, SerializeParseRoundTrip) {
  const CheckpointState state = SampleState();
  auto parsed = ParseCheckpoint(SerializeCheckpoint(state));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().wal_epoch, 2u);
  EXPECT_EQ(parsed.value().inserts, 4u);
  EXPECT_EQ(parsed.value().time_advances, 1u);
  EXPECT_EQ(parsed.value().base_series, state.base_series);
  EXPECT_EQ(parsed.value().schemes, state.schemes);
  ASSERT_EQ(parsed.value().models.size(), 1u);
  EXPECT_EQ(parsed.value().models[0].payload, "mean|n=2|sum=3");
  EXPECT_EQ(parsed.value().pending, state.pending);
}

TEST_F(CheckpointTest, SerializationIsDeterministic) {
  EXPECT_EQ(SerializeCheckpoint(SampleState()),
            SerializeCheckpoint(SampleState()));
}

TEST_F(CheckpointTest, GoldenTextPinsTheV1Layout) {
  // Any change to this string is an on-disk format change: bump
  // kCheckpointFormatVersion and provide a migration story before
  // repinning.
  EXPECT_EQ(SerializeCheckpoint(SampleState()),
            "f2db-checkpoint v1\n"
            "epoch 2\n"
            "counters 4 1 0 0 0\n"
            "base 2 0 2\n"
            "0 1 2\n"
            "1 3 4.5\n"
            "schemes 1\n"
            "2 2 0 1\n"
            "models 1\n"
            "0 0 0 0 0 0 mean|n=2|sum=3\n"
            "pending 1\n"
            "2 0 9.25\n"
            "crc 46dfae0e\n");
}

TEST_F(CheckpointTest, DetectsCorruption) {
  std::string text = SerializeCheckpoint(SampleState());
  text[text.find("9.25")] = '8';  // flip a digit, keep the CRC trailer
  auto parsed = ParseCheckpoint(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInternal);
}

TEST_F(CheckpointTest, RejectsVersionMismatch) {
  std::string text = SerializeCheckpoint(SampleState());
  const std::size_t v = text.find("v1");
  text[v + 1] = '2';
  EXPECT_FALSE(ParseCheckpoint(text).ok());
}

TEST_F(CheckpointTest, WriteLoadRoundTripAndNotFound) {
  EXPECT_EQ(LoadCheckpoint(dir_).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(WriteCheckpoint(dir_, SampleState()).ok());
  auto loaded = LoadCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().base_series, SampleState().base_series);
}

TEST_F(CheckpointTest, FailedWriteLeavesThePreviousCheckpointIntact) {
  CheckpointState first = SampleState();
  ASSERT_TRUE(WriteCheckpoint(dir_, first).ok());

  CheckpointState second = SampleState();
  second.inserts = 99;
  failpoint::Enable(kFailpointCheckpointWrite, failpoint::Policy::Always());
  const Status failed = WriteCheckpoint(dir_, second);
  EXPECT_FALSE(failed.ok());
  failpoint::Disable(kFailpointCheckpointWrite);

  // Atomicity: the old checkpoint still loads, no tmp residue corrupts it.
  auto loaded = LoadCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().inserts, 4u);
}

TEST_F(CheckpointTest, LoadRejectsTruncatedFile) {
  ASSERT_TRUE(WriteCheckpoint(dir_, SampleState()).ok());
  const std::string path = CheckpointPath(dir_);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::trunc);
  out << text.substr(0, text.size() / 2);
  out.close();
  EXPECT_EQ(LoadCheckpoint(dir_).status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace f2db
