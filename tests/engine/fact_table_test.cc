#include "engine/fact_table.h"

#include <gtest/gtest.h>

#include "testing/test_cubes.h"

namespace f2db {
namespace {

CubeSchema Figure2Schema() {
  return testing::MakeFigure2Cube(4, 0.0).schema();
}

FactTable SmallTable() {
  FactTable table(Figure2Schema());
  // 8 base cells x 3 time steps; value = (cell index + 1) * 10 + t.
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(4, 0.0);
  std::size_t cell = 0;
  for (NodeId base : graph.base_nodes()) {
    const NodeAddress address = graph.AddressOf(base);
    FactRow row;
    row.dims = {
        graph.schema().hierarchy(0).value_name(0, address.coords[0].value),
        graph.schema().hierarchy(1).value_name(0, address.coords[1].value)};
    for (std::int64_t t = 0; t < 3; ++t) {
      row.time = t;
      row.value = static_cast<double>((cell + 1) * 10 + t);
      EXPECT_TRUE(table.Append(row).ok());
    }
    ++cell;
  }
  return table;
}

TEST(FactTable, AppendAndDecode) {
  FactTable table = SmallTable();
  EXPECT_EQ(table.num_rows(), 24u);
  EXPECT_EQ(table.min_time(), 0);
  EXPECT_EQ(table.max_time(), 2);
  auto row = table.Row(0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().dims.size(), 2u);
  EXPECT_FALSE(table.Row(999).ok());
}

TEST(FactTable, AppendValidation) {
  FactTable table(Figure2Schema());
  FactRow bad;
  bad.dims = {"C1"};  // missing product
  EXPECT_FALSE(table.Append(bad).ok());
  bad.dims = {"C1", "NOPE"};
  EXPECT_FALSE(table.Append(bad).ok());
  EXPECT_FALSE(table.AppendEncoded({99, 0}, 0, 1.0).ok());
}

TEST(FactTable, ScanLevelZeroPredicate) {
  FactTable table = SmallTable();
  // city == C1 (dim 0, level 0, value 0): 2 products x 3 times = 6 rows.
  const auto rows = table.Scan({{0, 0, 0}});
  EXPECT_EQ(rows.size(), 6u);
}

TEST(FactTable, ScanRollupPredicate) {
  FactTable table = SmallTable();
  // region == R2 (dim 0, level 1, value 1): cities C3, C4 -> 12 rows.
  const auto rows = table.Scan({{0, 1, 1}});
  EXPECT_EQ(rows.size(), 12u);
  // ALL predicate matches everything.
  EXPECT_EQ(table.Scan({{0, 2, 0}}).size(), 24u);
}

TEST(FactTable, ScanConjunction) {
  FactTable table = SmallTable();
  // region R1 AND product P2: cities C1, C2 -> 6 rows.
  const auto rows = table.Scan({{0, 1, 0}, {1, 0, 1}});
  EXPECT_EQ(rows.size(), 6u);
}

TEST(FactTable, AggregateByTimeMatchesGraphAggregates) {
  FactTable table = SmallTable();
  const TimeSeries total = table.AggregateByTime({});
  ASSERT_EQ(total.size(), 3u);
  // Sum over all 24 rows at t = 0: sum_{cell=1..8} cell*10 = 360.
  EXPECT_NEAR(total[0], 360.0, 1e-9);
  EXPECT_NEAR(total[1], 368.0, 1e-9);  // +1 per cell
}

TEST(FactTable, BuildGraphRoundTripsSeries) {
  FactTable table = SmallTable();
  auto graph = table.BuildGraph();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().series_length(), 3u);
  // Top node equals the table-wide aggregation.
  const TimeSeries total = table.AggregateByTime({});
  const TimeSeries& top = graph.value().series(graph.value().top_node());
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(top[t], total[t], 1e-9);
  }
  // A region-product aggregate equals the corresponding rollup scan.
  NodeAddress address;
  address.coords = {{1, 1}, {0, 0}};  // R2, P1
  const NodeId node = graph.value().NodeFor(address).value();
  const TimeSeries scanned = table.AggregateByTime({{0, 1, 1}, {1, 0, 0}});
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(graph.value().series(node)[t], scanned[t], 1e-9);
  }
}

TEST(FactTable, BuildGraphRejectsDuplicates) {
  FactTable table = SmallTable();
  FactRow duplicate;
  duplicate.dims = {"C1", "P1"};
  duplicate.time = 0;
  duplicate.value = 1.0;
  ASSERT_TRUE(table.Append(duplicate).ok());
  EXPECT_FALSE(table.BuildGraph().ok());
}

TEST(FactTable, BuildGraphRejectsGaps) {
  FactTable table(Figure2Schema());
  FactRow row;
  row.dims = {"C1", "P1"};
  row.time = 0;
  row.value = 1.0;
  ASSERT_TRUE(table.Append(row).ok());
  row.time = 2;  // gap at t = 1 for this cell; other cells missing entirely
  ASSERT_TRUE(table.Append(row).ok());
  EXPECT_FALSE(table.BuildGraph().ok());
}

TEST(FactTable, EmptyTableBehaviour) {
  FactTable table(Figure2Schema());
  EXPECT_TRUE(table.AggregateByTime({}).empty());
  EXPECT_FALSE(table.BuildGraph().ok());
}

TEST(FactTable, OutOfOrderTimesSupported) {
  FactTable table(Figure2Schema());
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(4, 0.0);
  // Insert times in reverse order; BuildGraph normalizes by min_time.
  for (std::int64_t t = 2; t >= 0; --t) {
    for (NodeId base : graph.base_nodes()) {
      const NodeAddress address = graph.AddressOf(base);
      FactRow row;
      row.dims = {
          graph.schema().hierarchy(0).value_name(0, address.coords[0].value),
          graph.schema().hierarchy(1).value_name(0, address.coords[1].value)};
      row.time = t + 100;  // non-zero start time
      row.value = 1.0;
      ASSERT_TRUE(table.Append(row).ok());
    }
  }
  auto built = table.BuildGraph();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().series(0).start_time(), 100);
}

}  // namespace
}  // namespace f2db
