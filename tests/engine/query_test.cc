#include "engine/query.h"

#include <gtest/gtest.h>

namespace f2db {
namespace {

TEST(QueryParser, Figure1Query1) {
  auto q = ParseForecastQuery(
      "SELECT time, sales FROM facts WHERE product = 'P4' AND city = 'C4' "
      "AS OF now() + '1 day'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().measure, "sales");
  EXPECT_FALSE(q.value().aggregate);
  ASSERT_EQ(q.value().filters.size(), 2u);
  EXPECT_EQ(q.value().filters[0], (DimensionFilter{"product", "P4"}));
  EXPECT_EQ(q.value().filters[1], (DimensionFilter{"city", "C4"}));
  EXPECT_EQ(q.value().horizon, 1u);
}

TEST(QueryParser, Figure1Query2WithGroupBy) {
  auto q = ParseForecastQuery(
      "SELECT time, SUM(sales) FROM facts WHERE product = 'P4' AND region = "
      "'R2' GROUP BY time AS OF now() + '1 day'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().aggregate);
  EXPECT_EQ(q.value().measure, "sales");
  EXPECT_EQ(q.value().filters.size(), 2u);
}

TEST(QueryParser, NoWhereClause) {
  auto q = ParseForecastQuery(
      "SELECT time, SUM(m) FROM facts AS OF now() + '5'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().filters.empty());
  EXPECT_EQ(q.value().horizon, 5u);
}

TEST(QueryParser, KeywordsCaseInsensitive) {
  auto q = ParseForecastQuery(
      "select TIME, sum(sales) from FACTS where city = 'C1' group by time "
      "as of NOW() + '2'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().horizon, 2u);
}

TEST(QueryParser, ValuesCaseSensitive) {
  auto q = ParseForecastQuery(
      "SELECT time, x FROM facts WHERE city = 'c1' AS OF now() + '1'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().filters[0].value, "c1");
}

TEST(QueryParser, TrailingSemicolonAllowed) {
  EXPECT_TRUE(
      ParseForecastQuery("SELECT time, x FROM f AS OF now() + '3';").ok());
}

TEST(QueryParser, HorizonWithUnitText) {
  auto q = ParseForecastQuery(
      "SELECT time, x FROM f AS OF now() + '12 hours'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().horizon, 12u);
}

TEST(QueryParser, RejectsZeroOrNegativeHorizon) {
  EXPECT_FALSE(
      ParseForecastQuery("SELECT time, x FROM f AS OF now() + '0'").ok());
  EXPECT_FALSE(
      ParseForecastQuery("SELECT time, x FROM f AS OF now() + 'abc'").ok());
}

TEST(QueryParser, RejectsMissingAsOf) {
  EXPECT_FALSE(ParseForecastQuery("SELECT time, x FROM f").ok());
}

TEST(QueryParser, RejectsMissingTimeColumn) {
  EXPECT_FALSE(
      ParseForecastQuery("SELECT x FROM f AS OF now() + '1'").ok());
}

TEST(QueryParser, RejectsUnterminatedString) {
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f WHERE a = 'b AS OF now() + '1'")
                   .ok());
}

TEST(QueryParser, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f AS OF now() + '1' extra")
                   .ok());
}

TEST(QueryParser, RejectsBadCharacters) {
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f WHERE a # 'b' AS OF now() + '1'")
                   .ok());
}

TEST(QueryParser, RejectsMalformedPredicate) {
  EXPECT_FALSE(ParseForecastQuery(
                   "SELECT time, x FROM f WHERE a = b AS OF now() + '1'")
                   .ok());
}

TEST(QueryToString, RoundTripsThroughParser) {
  ForecastQuery q;
  q.measure = "sales";
  q.aggregate = true;
  q.filters = {{"region", "R2"}, {"product", "P4"}};
  q.horizon = 7;
  auto reparsed = ParseForecastQuery(q.ToString());
  ASSERT_TRUE(reparsed.ok()) << q.ToString();
  EXPECT_EQ(reparsed.value().measure, q.measure);
  EXPECT_EQ(reparsed.value().aggregate, q.aggregate);
  EXPECT_EQ(reparsed.value().filters, q.filters);
  EXPECT_EQ(reparsed.value().horizon, q.horizon);
}

TEST(QueryParser, QuotedValueWithSpaces) {
  auto q = ParseForecastQuery(
      "SELECT time, x FROM f WHERE state = 'New South Wales' AS OF now() + "
      "'4'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().filters[0].value, "New South Wales");
}

// Regression: the lexer dropped exponent suffixes from numeric literals, so
// "%.17g"-rendered measures like 1.5e-05 failed to parse (found by the
// differential harness; see
// PropertyDifferentialTest.RegressionTinyValuesSurviveSqlRoundTrip).
TEST(StatementLexer, AcceptsExponentNumericLiterals) {
  const char* cases[] = {
      "INSERT INTO facts VALUES ('C1', 10, 1e6)",
      "INSERT INTO facts VALUES ('C1', 10, 2.5E-3)",
      "INSERT INTO facts VALUES ('C1', 10, 1e+2)",
      "INSERT INTO facts VALUES ('C1', 10, -4.0822845412000796e-06)",
  };
  for (const char* sql : cases) {
    auto s = ParseStatement(sql);
    ASSERT_TRUE(s.ok()) << sql << ": " << s.status().ToString();
  }
  EXPECT_DOUBLE_EQ(
      ParseStatement(cases[0]).value().insert.value, 1e6);
  EXPECT_DOUBLE_EQ(
      ParseStatement(cases[1]).value().insert.value, 2.5e-3);
  EXPECT_DOUBLE_EQ(
      ParseStatement(cases[2]).value().insert.value, 1e2);
  EXPECT_DOUBLE_EQ(
      ParseStatement(cases[3]).value().insert.value, -4.0822845412000796e-06);
}

TEST(StatementLexer, RejectsDanglingExponent) {
  // "1e" and "1e+" are not numbers; the 'e' must not be swallowed.
  EXPECT_FALSE(ParseStatement("INSERT INTO facts VALUES ('C1', 10, 1e)").ok());
  EXPECT_FALSE(
      ParseStatement("INSERT INTO facts VALUES ('C1', 10, 1e+)").ok());
}

}  // namespace
}  // namespace f2db
