// ShardedEngine unit tests: hash partitioning, ancestor-closure shard
// schemas, single-shard routing, scatter-gather merge additivity,
// cross-shard configuration rejection, per-shard durability, and the
// per-shard Prometheus exposition.

#include "engine/sharded_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "testing/crash.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

/// The four Figure 2 cities (dimension 0, level 0) — the partitioning key.
const std::vector<std::string> kCities = {"C1", "C2", "C3", "C4"};

ShardedEngineOptions MakeOptions(std::size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine.maintenance_threads = 1;
  return options;
}

Result<std::unique_ptr<ShardedEngine>> OpenFigure2(std::size_t num_shards) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  return ShardedEngine::Open(graph, MakeOptions(num_shards));
}

/// Loads the canonical shard-safe configuration (one model per base cell,
/// covering schemes) into an engine pair over the same cube.
ModelSpec MeanSpec() {
  ModelSpec spec;
  spec.type = ModelType::kSes;
  spec.period = 1;
  return spec;
}

ForecastQuery AllQuery(std::size_t horizon) {
  ForecastQuery query;
  query.measure = "sales";
  query.aggregate = true;
  query.horizon = horizon;
  return query;
}

ForecastQuery CityQuery(const std::string& city, std::size_t horizon) {
  ForecastQuery query = AllQuery(horizon);
  query.filters.push_back({"city", city});
  return query;
}

/// Inserts one full round (every base cell) at the cube frontier.
void InsertRound(ShardedEngine& sharded, std::int64_t time, double value) {
  for (const std::string& city : kCities) {
    for (const std::string& product : {"P1", "P2"}) {
      const Status status =
          sharded.InsertFact({city, product}, time, value);
      ASSERT_TRUE(status.ok()) << city << "/" << product << ": "
                               << status.ToString();
    }
  }
}

TEST(ShardedEngineTest, PartitionOfIsDeterministicAndBounded) {
  for (const std::string& city : kCities) {
    for (std::size_t m = 1; m <= 9; ++m) {
      const std::size_t p = ShardedEngine::PartitionOf(city, m);
      EXPECT_LT(p, m);
      EXPECT_EQ(p, ShardedEngine::PartitionOf(city, m));
    }
    EXPECT_EQ(ShardedEngine::PartitionOf(city, 1), 0u);
  }
  // FNV-1a actually separates the palette somewhere: not every M maps all
  // four cities to one partition.
  bool separated = false;
  for (std::size_t m = 2; m <= 9 && !separated; ++m) {
    for (const std::string& city : kCities) {
      separated = separated || ShardedEngine::PartitionOf(city, m) !=
                                   ShardedEngine::PartitionOf(kCities[0], m);
    }
  }
  EXPECT_TRUE(separated);
}

TEST(ShardedEngineTest, OpenPartitionsEveryBaseCellExactlyOnce) {
  for (const std::size_t m : {1u, 2u, 3u, 7u, 64u}) {
    auto sharded = OpenFigure2(m);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ(sharded.value()->num_shards(), m);
    EXPECT_GE(sharded.value()->num_active_shards(), 1u);
    // At most one active partition per distinct city.
    EXPECT_LE(sharded.value()->num_active_shards(), kCities.size());
    std::size_t base_cells = 0;
    for (const std::size_t p : sharded.value()->active_partitions()) {
      const F2dbEngine* shard = sharded.value()->shard(p);
      ASSERT_NE(shard, nullptr);
      base_cells += shard->graph().base_nodes().size();
    }
    EXPECT_EQ(base_cells, 8u) << "m=" << m;  // 4 cities x 2 products
  }
}

TEST(ShardedEngineTest, EmptyPartitionsRunNoEngine) {
  auto sharded = OpenFigure2(64);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  std::size_t empty = 0;
  for (std::size_t p = 0; p < 64; ++p) {
    if (sharded.value()->shard(p) == nullptr) ++empty;
  }
  EXPECT_EQ(empty, 64 - sharded.value()->num_active_shards());
  EXPECT_GE(empty, 60u);  // at most 4 cities occupy partitions
}

TEST(ShardedEngineTest, ScatterGatherMatchesUnshardedForecasts) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  auto config = BuildShardableConfiguration(graph, MeanSpec(), 1.0);
  ASSERT_TRUE(config.ok()) << config.status().ToString();

  F2dbEngine unsharded(testing::MakeFigure2Cube(48, 0.05),
                       MakeOptions(1).engine);
  const ConfigurationEvaluator evaluator(unsharded.graph(), 1.0);
  ASSERT_TRUE(unsharded.LoadConfiguration(config.value(), evaluator).ok());

  for (const std::size_t m : {1u, 2u, 3u, 7u}) {
    auto sharded = ShardedEngine::Open(graph, MakeOptions(m));
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE(sharded.value()->LoadConfiguration(config.value(), 1.0).ok());

    std::vector<ForecastQuery> queries = {AllQuery(3), CityQuery("C1", 2),
                                          CityQuery("C4", 4)};
    {
      ForecastQuery region = AllQuery(3);
      region.filters.push_back({"region", "R2"});  // C3 + C4
      queries.push_back(region);
    }
    for (const ForecastQuery& query : queries) {
      const auto want = unsharded.Execute(query);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      const auto got = sharded.value()->Execute(query);
      ASSERT_TRUE(got.ok()) << "m=" << m << ": " << got.status().ToString();
      EXPECT_EQ(got.value().node_name, want.value().node_name);
      EXPECT_EQ(got.value().degradation, DegradationLevel::kNone)
          << got.value().degradation_reason;
      ASSERT_EQ(got.value().rows.size(), want.value().rows.size());
      for (std::size_t h = 0; h < want.value().rows.size(); ++h) {
        EXPECT_EQ(got.value().rows[h].time, want.value().rows[h].time);
        EXPECT_NEAR(got.value().rows[h].value, want.value().rows[h].value,
                    1e-6 * std::abs(want.value().rows[h].value) + 1e-9)
            << "m=" << m << " h=" << h;
      }
    }
  }
}

TEST(ShardedEngineTest, LoadConfigurationRejectsCrossShardModels) {
  // Find a shard count that separates C1 and C2 — then a model at their
  // common region R1 spans partitions and must be rejected.
  std::size_t m = 0;
  for (std::size_t candidate = 2; candidate <= 16; ++candidate) {
    if (ShardedEngine::PartitionOf("C1", candidate) !=
        ShardedEngine::PartitionOf("C2", candidate)) {
      m = candidate;
      break;
    }
  }
  ASSERT_NE(m, 0u);

  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  auto config = BuildShardableConfiguration(graph, MeanSpec(), 1.0);
  ASSERT_TRUE(config.ok());

  // Relocate one model to the R1 x ALL aggregate.
  NodeAddress r1;
  r1.coords = {{1, 0}, {1, 0}};  // region R1, product ALL
  auto r1_node = graph.NodeFor(r1);
  ASSERT_TRUE(r1_node.ok());
  ModelConfiguration bad(graph.num_nodes());
  ModelEntry entry;
  const ModelSpec spec = MeanSpec();
  auto fitted = ModelFactory(spec).CreateAndFit(graph.series(r1_node.value()));
  ASSERT_TRUE(fitted.ok());
  entry.model = std::move(fitted.value());
  bad.AddModel(r1_node.value(), std::move(entry));

  auto sharded = ShardedEngine::Open(graph, MakeOptions(m));
  ASSERT_TRUE(sharded.ok());
  const Status loaded = sharded.value()->LoadConfiguration(bad, 1.0);
  EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument)
      << loaded.ToString();
  EXPECT_NE(loaded.message().find("spans multiple shards"),
            std::string::npos)
      << loaded.ToString();
}

TEST(ShardedEngineTest, InsertRoutesToOwningShardAndRoundsAdvanceAll) {
  auto sharded = OpenFigure2(3);
  ASSERT_TRUE(sharded.ok());
  ShardedEngine& engine = *sharded.value();
  const std::int64_t frontier = 48;

  // A single fact buffers on exactly the owning shard.
  ASSERT_TRUE(engine.InsertFact({"C1", "P1"}, frontier, 5.0).ok());
  EXPECT_EQ(engine.pending_inserts(), 1u);
  const std::size_t owner = ShardedEngine::PartitionOf("C1", 3);
  EXPECT_EQ(engine.shard(owner)->pending_inserts(), 1u);

  // Unknown city: rejected without touching any shard (the same kNotFound
  // the unsharded name-routed insert reports).
  EXPECT_EQ(engine.InsertFact({"C9", "P1"}, frontier, 5.0).code(),
            StatusCode::kNotFound);
  // Wrong arity: rejected up front.
  EXPECT_EQ(engine.InsertFact({"C1"}, frontier, 5.0).code(),
            StatusCode::kInvalidArgument);

  // Completing the round advances every shard exactly once.
  for (const std::string& city : kCities) {
    for (const std::string& product : {"P1", "P2"}) {
      if (city == "C1" && product == "P1") continue;  // already inserted
      ASSERT_TRUE(engine.InsertFact({city, product}, frontier, 5.0).ok());
    }
  }
  EXPECT_EQ(engine.pending_inserts(), 0u);
  for (const std::size_t p : engine.active_partitions()) {
    EXPECT_EQ(engine.shard(p)->stats().time_advances, 1u) << "shard " << p;
  }
  // Behind the advanced frontier: rejected by the owning shard.
  EXPECT_EQ(engine.InsertFact({"C1", "P1"}, frontier, 5.0).code(),
            StatusCode::kOutOfRange);
  // A duplicate buffered at the new frontier: kAlreadyExists.
  ASSERT_TRUE(engine.InsertFact({"C1", "P1"}, frontier + 1, 5.0).ok());
  EXPECT_EQ(engine.InsertFact({"C1", "P1"}, frontier + 1, 5.0).code(),
            StatusCode::kAlreadyExists);
}

TEST(ShardedEngineTest, MisalignedShardFrontiersFailCrossShardQueries) {
  // Separate C1 from some other city, then advance only C1's shard.
  std::size_t m = 0;
  for (std::size_t candidate = 2; candidate <= 16; ++candidate) {
    bool separated = false;
    for (const std::string& city : kCities) {
      separated = separated || ShardedEngine::PartitionOf(city, candidate) !=
                                   ShardedEngine::PartitionOf("C1", candidate);
    }
    if (separated) {
      m = candidate;
      break;
    }
  }
  ASSERT_NE(m, 0u);

  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  auto config = BuildShardableConfiguration(graph, MeanSpec(), 1.0);
  ASSERT_TRUE(config.ok());
  auto sharded = ShardedEngine::Open(graph, MakeOptions(m));
  ASSERT_TRUE(sharded.ok());
  ShardedEngine& engine = *sharded.value();
  ASSERT_TRUE(engine.LoadConfiguration(config.value(), 1.0).ok());

  const std::size_t c1_partition = ShardedEngine::PartitionOf("C1", m);
  for (const std::string& city : kCities) {
    if (ShardedEngine::PartitionOf(city, m) != c1_partition) continue;
    for (const std::string& product : {"P1", "P2"}) {
      ASSERT_TRUE(engine.InsertFact({city, product}, 48, 5.0).ok());
    }
  }
  ASSERT_EQ(engine.shard(c1_partition)->stats().time_advances, 1u);

  const auto result = engine.Execute(AllQuery(2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("misaligned"), std::string::npos)
      << result.status().ToString();

  // A query confined to the advanced shard still serves.
  const auto city_result = engine.Execute(CityQuery("C1", 2));
  EXPECT_TRUE(city_result.ok()) << city_result.status().ToString();
}

TEST(ShardedEngineTest, StatsAggregateAndPrometheusCarryShardLabels) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  auto config = BuildShardableConfiguration(graph, MeanSpec(), 1.0);
  ASSERT_TRUE(config.ok());
  auto sharded = ShardedEngine::Open(graph, MakeOptions(2));
  ASSERT_TRUE(sharded.ok());
  ShardedEngine& engine = *sharded.value();
  ASSERT_TRUE(engine.LoadConfiguration(config.value(), 1.0).ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Execute(AllQuery(1)).ok());
  }
  std::size_t per_shard_queries = 0;
  for (const std::size_t p : engine.active_partitions()) {
    per_shard_queries += engine.shard(p)->stats().queries;
  }
  EXPECT_EQ(engine.stats().queries, per_shard_queries);

  const std::string text = engine.StatsPrometheusText();
  for (const std::size_t p : engine.active_partitions()) {
    EXPECT_NE(
        text.find("f2db_queries_total{shard=\"" + std::to_string(p) + "\"}"),
        std::string::npos)
        << text;
  }
  // The unlabeled aggregate line is still present for existing dashboards.
  EXPECT_NE(text.find("\nf2db_queries_total "), std::string::npos) << text;
}

TEST(ShardedEngineTest, DurableShardsCheckpointAndRecoverIndependently) {
  char tmpl[] = "/tmp/f2db_sharded_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  ShardedEngineOptions options = MakeOptions(3);
  options.engine.data_dir = dir;
  options.engine.fsync_policy = FsyncPolicy::kAlways;
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  {
    auto sharded = ShardedEngine::Open(graph, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_TRUE(sharded.value()->durable());
    InsertRound(*sharded.value(), 48, 7.0);
    ASSERT_TRUE(sharded.value()->CheckpointNow().ok());
    InsertRound(*sharded.value(), 49, 8.0);  // WAL tail past the checkpoint
  }
  {
    auto sharded = ShardedEngine::Open(graph, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const EngineStats stats = sharded.value()->stats();
    EXPECT_EQ(stats.inserts, 16u);
    EXPECT_EQ(sharded.value()->pending_inserts(), 0u);
    for (const std::size_t p : sharded.value()->active_partitions()) {
      EXPECT_EQ(sharded.value()->shard(p)->stats().time_advances, 2u)
          << "shard " << p;
      // Shard data lives under its own subdirectory.
      EXPECT_EQ(::access((dir + "/shard-" + std::to_string(p)).c_str(), F_OK),
                0);
    }
  }
  f2db::testing::RemoveDirectoryTree(dir);
}

TEST(ShardedEngineTest, ExplainMergesCrossShardPlans) {
  std::size_t m = 0;
  for (std::size_t candidate = 2; candidate <= 16; ++candidate) {
    for (const std::string& city : kCities) {
      if (ShardedEngine::PartitionOf(city, candidate) !=
          ShardedEngine::PartitionOf("C1", candidate)) {
        m = candidate;
        break;
      }
    }
    if (m != 0) break;
  }
  ASSERT_NE(m, 0u);

  const TimeSeriesGraph graph = testing::MakeFigure2Cube(48, 0.05);
  auto config = BuildShardableConfiguration(graph, MeanSpec(), 1.0);
  ASSERT_TRUE(config.ok());
  auto sharded = ShardedEngine::Open(graph, MakeOptions(m));
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded.value()->LoadConfiguration(config.value(), 1.0).ok());

  const auto plan = sharded.value()->Explain(AllQuery(1));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool mentions_shard = false;
  for (const std::string& line : plan.value().source_models) {
    mentions_shard = mentions_shard || line.rfind("shard ", 0) == 0;
  }
  EXPECT_TRUE(mentions_shard);
}

}  // namespace
}  // namespace f2db
