// WAL format and writer tests: framing round-trips, CRC/torn-tail
// detection, append/fsync fault injection with rollback, and golden bytes
// pinning the v1 on-disk layout.

#include "engine/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace f2db {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/f2db_wal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    failpoint::DisableAll();
    for (const auto epochs = ListWalEpochs(dir_); const auto epoch :
         (epochs.ok() ? epochs.value() : std::vector<std::uint64_t>{})) {
      ::unlink(WalPath(dir_, epoch).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::uint64_t FileSize(const std::string& path) {
    struct stat st {};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    return static_cast<std::uint64_t>(st.st_size);
  }

  std::string dir_;
};

std::string ToHex(const std::string& bytes) {
  std::string out;
  char buf[3];
  for (const unsigned char c : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", c);
    out += buf;
  }
  return out;
}

TEST_F(WalTest, RoundTripsEveryRecordKind) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(7, 42, 1.5)).ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Catalog("f2db-catalog v1\n")).ok());
  ASSERT_TRUE(
      writer.value().Append(WalRecord::ModelInstall(3, 2.5, "ses|a=0.2")).ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Quarantine(9, 4)).ok());
  EXPECT_EQ(writer.value().records_appended(), 4u);
  EXPECT_GT(writer.value().bytes_appended(), 0u);
  writer.value().Close();

  auto read = ReadWalSegment(WalPath(dir_, 1));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read.value().torn_tail);
  EXPECT_EQ(read.value().epoch, 1u);
  ASSERT_EQ(read.value().records.size(), 4u);

  const WalRecord& insert = read.value().records[0];
  EXPECT_EQ(insert.kind, WalRecord::Kind::kInsert);
  EXPECT_EQ(insert.node, 7u);
  EXPECT_EQ(insert.time, 42);
  EXPECT_EQ(insert.value, 1.5);

  EXPECT_EQ(read.value().records[1].kind, WalRecord::Kind::kCatalog);
  EXPECT_EQ(read.value().records[1].payload, "f2db-catalog v1\n");

  const WalRecord& model = read.value().records[2];
  EXPECT_EQ(model.kind, WalRecord::Kind::kModelInstall);
  EXPECT_EQ(model.node, 3u);
  EXPECT_EQ(model.value, 2.5);
  EXPECT_EQ(model.payload, "ses|a=0.2");

  const WalRecord& quarantine = read.value().records[3];
  EXPECT_EQ(quarantine.kind, WalRecord::Kind::kQuarantine);
  EXPECT_EQ(quarantine.node, 9u);
  EXPECT_EQ(quarantine.count, 4u);
}

TEST_F(WalTest, GoldenBytesPinTheV1Layout) {
  // Any change to these strings is an on-disk format change: bump
  // kWalFormatVersion and provide a migration story before repinning.
  EXPECT_EQ(ToHex(EncodeWalRecord(WalRecord::Insert(7, 42, 1.5))),
            "150000004850b8b401070000002a00000000000000000000000000f83f");
  EXPECT_EQ(ToHex(EncodeWalRecord(WalRecord::Quarantine(3, 5))),
            "0d0000006ac7a04404030000000500000000000000");
}

TEST_F(WalTest, DetectsCorruptedRecordAsTornTail) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(1, 10, 1.0)).ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(2, 11, 2.0)).ok());
  writer.value().Close();

  // Flip one byte inside the SECOND record's body: the reader must keep
  // the first record and stop at the corruption.
  const std::string path = WalPath(dir_, 1);
  const std::uint64_t size = FileSize(path);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(size - 1));
  file.put('\xFF');
  file.close();

  auto read = ReadWalSegment(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read.value().torn_tail);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].node, 1u);
}

TEST_F(WalTest, ToleratesAndTruncatesTornTail) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(1, 10, 1.0)).ok());
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(2, 11, 2.0)).ok());
  writer.value().Close();

  const std::string path = WalPath(dir_, 1);
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(FileSize(path) - 5)),
            0);

  auto read = ReadWalSegment(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().torn_tail);
  ASSERT_EQ(read.value().records.size(), 1u);

  // Reopen truncates the tear and appends cleanly after it.
  auto reopened = WalWriter::Reopen(dir_, 1, read.value().valid_bytes,
                                    FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(FileSize(path), read.value().valid_bytes);
  ASSERT_TRUE(reopened.value().Append(WalRecord::Insert(3, 11, 3.0)).ok());
  reopened.value().Close();

  auto reread = ReadWalSegment(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().torn_tail);
  ASSERT_EQ(reread.value().records.size(), 2u);
  EXPECT_EQ(reread.value().records[1].node, 3u);
}

TEST_F(WalTest, CreateRefusesToReuseAnEpoch) {
  auto first = WalWriter::Create(dir_, 1, FsyncPolicy::kNone, 1);
  ASSERT_TRUE(first.ok());
  first.value().Close();
  auto second = WalWriter::Create(dir_, 1, FsyncPolicy::kNone, 1);
  EXPECT_FALSE(second.ok());
}

TEST_F(WalTest, RejectsVersionMismatch) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kNone, 1);
  ASSERT_TRUE(writer.ok());
  writer.value().Close();

  const std::string path = WalPath(dir_, 1);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(7);  // the version byte, right after "F2DBWAL"
  file.put(static_cast<char>(kWalFormatVersion + 1));
  file.close();

  auto read = ReadWalSegment(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("version mismatch"),
            std::string::npos);
}

TEST_F(WalTest, BatchPolicySyncsEveryNthRecord) {
  // Indirect observation via the fsync failpoint: with batch=3 only every
  // third append evaluates the fsync site.
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kBatch, 3);
  ASSERT_TRUE(writer.ok());
  // Armed with a period it never reaches, the site only counts evaluations.
  failpoint::Enable(kFailpointWalFsync, failpoint::Policy::EveryNth(1000000));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(writer.value().Append(WalRecord::Insert(1, i, 1.0)).ok());
  }
  EXPECT_EQ(failpoint::Evaluations(kFailpointWalFsync), 2u);
  failpoint::Disable(kFailpointWalFsync);
  writer.value().Close();
}

TEST_F(WalTest, AppendFailpointRejectsBeforeWriting) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok());
  const std::uint64_t size_before = FileSize(WalPath(dir_, 1));

  failpoint::Enable(kFailpointWalAppend, failpoint::Policy::Always());
  const Status rejected = writer.value().Append(WalRecord::Insert(1, 10, 1.0));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  failpoint::Disable(kFailpointWalAppend);

  EXPECT_EQ(FileSize(WalPath(dir_, 1)), size_before);
  EXPECT_EQ(writer.value().records_appended(), 0u);
  EXPECT_TRUE(writer.value().Append(WalRecord::Insert(1, 10, 1.0)).ok());
  writer.value().Close();
}

TEST_F(WalTest, FsyncFailureRollsTheAppendBack) {
  auto writer = WalWriter::Create(dir_, 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok());
  const std::uint64_t size_before = FileSize(WalPath(dir_, 1));

  failpoint::Enable(kFailpointWalFsync, failpoint::Policy::Always());
  const Status rejected = writer.value().Append(WalRecord::Insert(1, 10, 1.0));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  failpoint::Disable(kFailpointWalFsync);

  // The rejected record must not survive on disk: disk and caller agree.
  EXPECT_EQ(FileSize(WalPath(dir_, 1)), size_before);
  ASSERT_TRUE(writer.value().Append(WalRecord::Insert(2, 10, 2.0)).ok());
  writer.value().Close();

  auto read = ReadWalSegment(WalPath(dir_, 1));
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().torn_tail);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].node, 2u);
}

TEST_F(WalTest, ListsEpochsSorted) {
  for (const std::uint64_t epoch : {3u, 1u, 2u}) {
    auto writer = WalWriter::Create(dir_, epoch, FsyncPolicy::kNone, 1);
    ASSERT_TRUE(writer.ok());
    writer.value().Close();
  }
  auto epochs = ListWalEpochs(dir_);
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(epochs.value(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(WalTest, ParsesAndNamesFsyncPolicies) {
  EXPECT_EQ(ParseFsyncPolicy("none").value(), FsyncPolicy::kNone);
  EXPECT_EQ(ParseFsyncPolicy("batch").value(), FsyncPolicy::kBatch);
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatch), "batch");
}

}  // namespace
}  // namespace f2db
