// Segment v1 file format tests: golden byte pin, version gating, and
// exhaustive single-byte-flip / truncation rejection.
//
// The golden file is load-bearing the same way the WAL v1 and checkpoint
// v1 pins are: sealed segments persist across binary upgrades, so any
// layout change must either reproduce these bytes exactly or bump
// kSegmentFormatVersion and keep decoding v1.

#include "storage/segment.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/fsio.h"

namespace f2db::storage {
namespace {

/// The pinned two-series segment: seq 7 sealing periods [3, 8).
SegmentData GoldenSegment() {
  SegmentData segment;
  segment.seq = 7;
  segment.start_time = 3;
  segment.count = 5;
  segment.series.push_back({1, {10.0, 10.0, 12.5, 12.5, -3.0}});
  segment.series.push_back({4, {0.5, 1.0, 1.5, 2.0, 2.5}});
  return segment;
}

const std::string& GoldenBytes() {
  static const std::string golden(
      "\x46\x32\x44\x42\x53\x45\x47\x01\x07\x00\x00\x00\x00\x00\x00\x00"
      "\x03\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00"
      "\x02\x00\x00\x00\xa5\x7d\x99\x36\x01\x00\x00\x00\x05\x00\x00\x00"
      "\x11\x00\x00\x00\x48\xb9\x4f\xf3\x06\x40\x24\x00\x00\x00\x00\x00"
      "\x00\x81\x1b\x04\xd1\x81\x08\x02\x10\x04\x00\x00\x00\x05\x00\x00"
      "\x00\x13\x00\x00\x00\x42\xe4\xb7\x5c\x06\x3f\xe0\x00\x00\x00\x00"
      "\x00\x00\x81\x6b\x06\xd8\x0d\x84\xcf\xff\x6d\x06",
      108);
  return golden;
}

void ExpectEqualsGolden(const SegmentData& segment) {
  const SegmentData want = GoldenSegment();
  EXPECT_EQ(segment.seq, want.seq);
  EXPECT_EQ(segment.start_time, want.start_time);
  EXPECT_EQ(segment.count, want.count);
  ASSERT_EQ(segment.series.size(), want.series.size());
  for (std::size_t s = 0; s < want.series.size(); ++s) {
    EXPECT_EQ(segment.series[s].node, want.series[s].node);
    EXPECT_EQ(segment.series[s].values, want.series[s].values);
  }
}

TEST(SegmentFormatTest, GoldenBytePin) {
  auto bytes = EncodeSegment(GoldenSegment());
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), GoldenBytes());
  // The frozen fields of the header: magic, version byte.
  EXPECT_EQ(GoldenBytes().substr(0, 7), "F2DBSEG");
  EXPECT_EQ(static_cast<std::uint8_t>(GoldenBytes()[7]),
            kSegmentFormatVersion);
}

TEST(SegmentFormatTest, GoldenBytesDecode) {
  // A v1 file written by any past binary must keep decoding.
  auto decoded = DecodeSegment(GoldenBytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEqualsGolden(decoded.value());
}

TEST(SegmentFormatTest, UnsupportedVersionRejected) {
  std::string tampered = GoldenBytes();
  tampered[7] = static_cast<char>(kSegmentFormatVersion + 1);
  auto decoded = DecodeSegment(tampered);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(SegmentFormatTest, EverySingleByteFlipRejected) {
  // Both CRC levels together cover every byte of the file — header,
  // per-block metadata (including the node id), and payload — so no
  // single-byte corruption can decode, anywhere.
  const std::string& golden = GoldenBytes();
  for (std::size_t i = 0; i < golden.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string tampered = golden;
      tampered[i] = static_cast<char>(tampered[i] ^ mask);
      EXPECT_FALSE(DecodeSegment(tampered).ok())
          << "byte " << i << " flipped with mask " << int(mask)
          << " still decoded";
    }
  }
}

TEST(SegmentFormatTest, EveryTruncationRejected) {
  const std::string& golden = GoldenBytes();
  for (std::size_t len = 0; len < golden.size(); ++len) {
    EXPECT_FALSE(
        DecodeSegment(std::string_view(golden).substr(0, len)).ok())
        << "decoded from a " << len << "-byte prefix";
  }
}

TEST(SegmentFormatTest, TrailingBytesRejected) {
  std::string tampered = GoldenBytes();
  tampered.push_back('\0');
  EXPECT_FALSE(DecodeSegment(tampered).ok());
}

TEST(SegmentFormatTest, SeriesLengthMismatchRejectedAtEncode) {
  SegmentData segment = GoldenSegment();
  segment.series[1].values.pop_back();
  EXPECT_FALSE(EncodeSegment(segment).ok());
}

TEST(SegmentFormatTest, FileNameFormat) {
  EXPECT_EQ(SegmentFileName(42), "seg-00000042.f2ds");
  EXPECT_EQ(SegmentPath("/data/segments", 1),
            "/data/segments/seg-00000001.f2ds");
}

TEST(SegmentFormatTest, FileRoundTripThroughDisk) {
  char tmpl[] = "/tmp/f2db_segment_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  std::uint64_t bytes_written = 0;
  ASSERT_TRUE(WriteSegmentFile(dir, GoldenSegment(), &bytes_written).ok());
  EXPECT_EQ(bytes_written, GoldenBytes().size());
  auto read = ReadSegmentFile(SegmentPath(dir, 7));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectEqualsGolden(read.value());
  ASSERT_TRUE(RemoveFile(SegmentPath(dir, 7)).ok());
  ::rmdir(dir.c_str());
}

TEST(SegmentFormatTest, MissingFileIsNotFound) {
  auto read = ReadSegmentFile("/tmp/f2db_segment_missing/seg-00000001.f2ds");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace f2db::storage
