// Segment manifest tests: golden text pin, round-trip, CRC tamper
// rejection, and the atomic-rename publish path.

#include "storage/manifest.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>

#include "storage/fsio.h"

namespace f2db::storage {
namespace {

ManifestData GoldenManifest() {
  ManifestData manifest;
  manifest.wal_epoch = 2;
  manifest.sealed_from = 3;
  manifest.sealed_to = 8;
  manifest.inserts = 40;
  manifest.time_advances = 5;
  manifest.reestimates = 1;
  manifest.quarantines = 0;
  manifest.refit_failures = 0;
  manifest.records_dropped = 10;
  manifest.offsets = {{1, 45.0}, {4, 7.5}};
  manifest.segments = {{7, 3, 5, 2, 108}};
  return manifest;
}

constexpr char kGoldenText[] =
    "f2db-manifest v1\n"
    "epoch 2\n"
    "sealed 3 8\n"
    "counters 40 5 1 0 0\n"
    "dropped 10\n"
    "offsets 2\n"
    "1 45\n"
    "4 7.5\n"
    "segments 1\n"
    "7 3 5 2 108\n"
    "crc 3a8582b4\n";

void ExpectEqualsGolden(const ManifestData& got) {
  const ManifestData want = GoldenManifest();
  EXPECT_EQ(got.wal_epoch, want.wal_epoch);
  EXPECT_EQ(got.sealed_from, want.sealed_from);
  EXPECT_EQ(got.sealed_to, want.sealed_to);
  EXPECT_EQ(got.inserts, want.inserts);
  EXPECT_EQ(got.time_advances, want.time_advances);
  EXPECT_EQ(got.reestimates, want.reestimates);
  EXPECT_EQ(got.quarantines, want.quarantines);
  EXPECT_EQ(got.refit_failures, want.refit_failures);
  EXPECT_EQ(got.records_dropped, want.records_dropped);
  EXPECT_EQ(got.offsets, want.offsets);
  ASSERT_EQ(got.segments.size(), want.segments.size());
  EXPECT_EQ(got.segments[0].seq, want.segments[0].seq);
  EXPECT_EQ(got.segments[0].start_time, want.segments[0].start_time);
  EXPECT_EQ(got.segments[0].count, want.segments[0].count);
  EXPECT_EQ(got.segments[0].num_series, want.segments[0].num_series);
  EXPECT_EQ(got.segments[0].bytes, want.segments[0].bytes);
}

TEST(SegmentManifestTest, GoldenTextPin) {
  EXPECT_EQ(SerializeManifest(GoldenManifest()), kGoldenText);
}

TEST(SegmentManifestTest, GoldenTextParses) {
  auto parsed = ParseManifest(kGoldenText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectEqualsGolden(parsed.value());
}

TEST(SegmentManifestTest, EmptyManifestRoundTrips) {
  const ManifestData empty;
  auto parsed = ParseManifest(SerializeManifest(empty));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().wal_epoch, 0u);
  EXPECT_TRUE(parsed.value().offsets.empty());
  EXPECT_TRUE(parsed.value().segments.empty());
}

TEST(SegmentManifestTest, OffsetsRoundTripFullPrecision) {
  ManifestData manifest = GoldenManifest();
  manifest.offsets = {{0, 0.1 + 0.2}, {9, -1.0 / 3.0}, {17, 1e-300}};
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().offsets, manifest.offsets);
}

TEST(SegmentManifestTest, TamperedLineRejected) {
  std::string tampered = kGoldenText;
  const std::size_t pos = tampered.find("counters 40");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 11, "counters 41");
  EXPECT_FALSE(ParseManifest(tampered).ok());
}

TEST(SegmentManifestTest, TruncationRejected) {
  const std::string text = kGoldenText;
  for (const std::size_t len :
       {std::size_t{0}, text.size() / 2, text.size() - 1}) {
    EXPECT_FALSE(ParseManifest(std::string_view(text).substr(0, len)).ok())
        << "parsed from a " << len << "-byte prefix";
  }
}

TEST(SegmentManifestTest, FileRoundTripAndNotFound) {
  char tmpl[] = "/tmp/f2db_manifest_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  auto absent = ReadManifestFile(dir);
  ASSERT_FALSE(absent.ok());
  EXPECT_EQ(absent.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(WriteManifestFile(dir, GoldenManifest()).ok());
  auto read = ReadManifestFile(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectEqualsGolden(read.value());

  // Republish overwrites atomically (no stale tmp left behind).
  ManifestData next = GoldenManifest();
  next.wal_epoch = 3;
  ASSERT_TRUE(WriteManifestFile(dir, next).ok());
  auto reread = ReadManifestFile(dir);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().wal_epoch, 3u);

  ASSERT_TRUE(RemoveFile(dir + "/" + kManifestFileName).ok());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace f2db::storage
