// Segment codec tests: the delta-of-delta + Gorilla-XOR bit format pinned
// golden, property round-tripped, and hardened against truncation.
//
// The golden pin is load-bearing: segment v1 files live on disk across
// binary upgrades, so any change to the bit layout must either reproduce
// these exact bytes or bump kSegmentFormatVersion.

#include "storage/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "testing/property.h"

namespace f2db::storage {
namespace {

using testing::PropertyIterations;
using testing::PropertySeed;
using testing::ReplayHint;
using testing::SubSeed;

/// Bit-exact comparison: NaN payloads, signed zeroes, and denormals must
/// all survive the XOR compressor unchanged.
bool SameBits(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

void ExpectRoundTrip(const std::vector<std::int64_t>& times,
                     const std::vector<double>& values,
                     const std::string& context) {
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok()) << context << ": " << block.status().ToString();
  std::vector<std::int64_t> got_times;
  std::vector<double> got_values;
  ASSERT_TRUE(
      DecodeSeriesBlock(block.value(), times.size(), &got_times, &got_values)
          .ok())
      << context;
  ASSERT_EQ(got_times.size(), times.size()) << context;
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(got_times[i], times[i]) << context << " point " << i;
    EXPECT_TRUE(SameBits(got_values[i], values[i]))
        << context << " point " << i << ": " << values[i] << " vs "
        << got_values[i];
  }
}

TEST(SegmentCodecTest, GoldenBitPin) {
  // Dense timestamps (every delta-of-delta zero after the first delta) and
  // values exercising the repeat, same-window, and new-window XOR paths.
  const std::vector<std::int64_t> times = {3, 4, 5, 6, 7};
  const std::vector<double> values = {10.0, 10.0, 12.5, 12.5, -3.0};
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok());
  const std::string golden(
      "\x06\x40\x24\x00\x00\x00\x00\x00\x00\x81\x1b\x04\xd1\x81\x08\x02"
      "\x10",
      17);
  EXPECT_EQ(block.value(), golden);
}

TEST(SegmentCodecTest, EmptyBlock) {
  auto block = EncodeSeriesBlock({}, {});
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(block.value().empty());
  std::vector<std::int64_t> times;
  std::vector<double> values;
  EXPECT_TRUE(DecodeSeriesBlock("", 0, &times, &values).ok());
  EXPECT_TRUE(times.empty());
  EXPECT_TRUE(values.empty());
}

TEST(SegmentCodecTest, RoundTripEdgeValues) {
  // NaN-adjacent and boundary bit patterns, in one block so the XOR chain
  // crosses every special value.
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  double payload_nan = quiet_nan;
  {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &payload_nan, sizeof(bits));
    bits |= 0x000DEADBEEFULL;  // non-default payload must survive
    std::memcpy(&payload_nan, &bits, sizeof(bits));
  }
  const std::vector<double> values = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      quiet_nan,
      payload_nan,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::min(),
      1.0,
  };
  std::vector<std::int64_t> times(values.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<std::int64_t>(i);
  }
  ExpectRoundTrip(times, values, "edge values");
}

TEST(SegmentCodecTest, OverlongFirstTimeVarintRejected) {
  // A 10-byte varint whose final byte sets bits beyond bit 63 would be
  // silently truncated by the shift; the decoder must reject the
  // non-canonical spelling like every other malformed input.
  std::string block(9, '\xff');
  block.push_back('\x7f');   // bits 69..63 set — beyond the u64 range
  block.append(8, '\x00');   // first value word
  std::vector<std::int64_t> times;
  std::vector<double> values;
  EXPECT_FALSE(DecodeSeriesBlock(block, 1, &times, &values).ok());
}

TEST(SegmentCodecTest, TenByteCanonicalVarintRoundTrips) {
  // INT64_MIN zigzags to UINT64_MAX — the canonical 10-byte varint whose
  // last byte is exactly 0x01. It must still decode.
  ExpectRoundTrip({std::numeric_limits<std::int64_t>::min()}, {1.5},
                  "10-byte canonical varint");
}

TEST(SegmentCodecTest, RoundTripConstantRuns) {
  // Long constant runs are the best case: one bit per repeated point.
  const std::vector<double> values(500, 42.25);
  std::vector<std::int64_t> times(values.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = 100 + static_cast<std::int64_t>(i);
  }
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok());
  // ~9 bytes of bootstrap + ~2 bits per (timestamp, value) pair after.
  EXPECT_LT(block.value().size(), 16 + 2 * values.size() / 8);
  ExpectRoundTrip(times, values, "constant run");
}

TEST(SegmentCodecTest, RoundTripRandomSeries) {
  const std::uint64_t base = PropertySeed();
  const std::size_t iterations = PropertyIterations(50);
  for (std::size_t i = 0; i < iterations; ++i) {
    Rng rng(SubSeed(base, "codec-random-" + std::to_string(i)));
    const std::size_t n =
        static_cast<std::size_t>(rng.UniformInt(1, 400));
    std::vector<std::int64_t> times(n);
    std::vector<double> values(n);
    std::int64_t t = rng.UniformInt(-1000, 1000);
    double level = rng.Uniform(-100.0, 100.0);
    for (std::size_t j = 0; j < n; ++j) {
      // Irregular timestamps: dense runs, gaps, occasional huge jumps.
      times[j] = t;
      t += rng.NextBernoulli(0.1) ? rng.UniformInt(1, 1 << 20)
                                  : rng.UniformInt(1, 3);
      level += rng.Gaussian(0.0, 5.0);
      values[j] = rng.NextBernoulli(0.05) ? 0.0 : level;
    }
    ExpectRoundTrip(times, values,
                    "random series " + std::to_string(i) + "\n" +
                        ReplayHint(base));
  }
}

TEST(SegmentCodecTest, EveryTruncationRejected) {
  const std::vector<std::int64_t> times = {3, 4, 5, 9, 10, 11, 40};
  const std::vector<double> values = {1.5, 2.5, 2.5, -7.0, 0.0, 1e300, -0.0};
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok());
  std::vector<std::int64_t> got_times;
  std::vector<double> got_values;
  for (std::size_t len = 0; len < block.value().size(); ++len) {
    const Status status =
        DecodeSeriesBlock(std::string_view(block.value()).substr(0, len),
                          times.size(), &got_times, &got_values);
    EXPECT_FALSE(status.ok()) << "decoded from a " << len << "-byte prefix";
  }
}

TEST(SegmentCodecTest, CountMismatchRejected) {
  // The count lives in the CRC-authenticated block header, so disk
  // corruption can never reach the decoder with a wrong count; these
  // bounds are for API misuse. A too-small count leaves non-zero payload
  // bits behind; a too-large one eventually exhausts the stream. (A count
  // off by one CAN alias the zero padding as a phantom repeat point —
  // inherent to Gorilla-style zero-biased buckets, and exactly why the
  // count is CRC-framed.)
  const std::vector<std::int64_t> times = {1, 2, 3};
  const std::vector<double> values = {5.0, 6.0, 7.0};
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok());
  std::vector<std::int64_t> got_times;
  std::vector<double> got_values;
  EXPECT_FALSE(
      DecodeSeriesBlock(block.value(), 2, &got_times, &got_values).ok());
  EXPECT_FALSE(
      DecodeSeriesBlock(block.value(), 16, &got_times, &got_values).ok());
}

TEST(SegmentCodecTest, NonzeroPaddingRejected) {
  const std::vector<std::int64_t> times = {1, 2, 3};
  const std::vector<double> values = {5.0, 6.25, 7.0};
  auto block = EncodeSeriesBlock(times, values);
  ASSERT_TRUE(block.ok());
  std::string tampered = block.value();
  tampered.back() = static_cast<char>(tampered.back() | 0x01);
  std::vector<std::int64_t> got_times;
  std::vector<double> got_values;
  const Status status =
      DecodeSeriesBlock(tampered, times.size(), &got_times, &got_values);
  EXPECT_FALSE(status.ok());
}

TEST(SegmentCodecTest, BitIoRoundTrip) {
  BitWriter writer;
  writer.PutBit(true);
  writer.PutBits(0x2Au, 7);
  writer.PutBits(0xDEADBEEFCAFEF00DULL, 64);
  writer.PutBit(false);
  writer.PutBit(true);
  const std::string bytes = writer.Take();
  BitReader reader(bytes);
  bool bit = false;
  std::uint64_t word = 0;
  ASSERT_TRUE(reader.GetBit(&bit));
  EXPECT_TRUE(bit);
  ASSERT_TRUE(reader.GetBits(7, &word));
  EXPECT_EQ(word, 0x2Au);
  ASSERT_TRUE(reader.GetBits(64, &word));
  EXPECT_EQ(word, 0xDEADBEEFCAFEF00DULL);
  ASSERT_TRUE(reader.GetBit(&bit));
  EXPECT_FALSE(bit);
  ASSERT_TRUE(reader.GetBit(&bit));
  EXPECT_TRUE(bit);
  EXPECT_TRUE(reader.PaddingIsZero());
  // Exhaustion is reported, not UB.
  BitReader empty("");
  EXPECT_FALSE(empty.GetBit(&bit));
  EXPECT_FALSE(empty.GetBits(1, &word));
}

}  // namespace
}  // namespace f2db::storage
