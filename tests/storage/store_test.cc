// SegmentStore tests: directory lifecycle (manifest load, orphan and tmp
// cleanup), segment publication, and full-chain validation.

#include "storage/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "storage/fsio.h"
#include "testing/crash.h"

namespace f2db::storage {
namespace {

class SegmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/f2db_store_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { f2db::testing::RemoveDirectoryTree(dir_); }

  std::unique_ptr<SegmentStore> OpenStore() {
    auto store = SegmentStore::Open(dir_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  /// A two-series segment sealing [start, start + count).
  static SegmentData MakeSegment(std::uint64_t seq, std::int64_t start,
                                 std::uint64_t count) {
    SegmentData segment;
    segment.seq = seq;
    segment.start_time = start;
    segment.count = count;
    for (const std::uint32_t node : {1u, 4u}) {
      SegmentSeries series;
      series.node = node;
      for (std::uint64_t i = 0; i < count; ++i) {
        series.values.push_back(static_cast<double>(node) * 10.0 +
                                static_cast<double>(start + std::int64_t(i)));
      }
      segment.series.push_back(std::move(series));
    }
    return segment;
  }

  static ManifestSegment EntryFor(const SegmentData& segment,
                                  std::uint64_t bytes) {
    return {segment.seq, segment.start_time, segment.count,
            static_cast<std::uint32_t>(segment.series.size()), bytes};
  }

  std::string dir_;
};

TEST_F(SegmentStoreTest, OpenFreshDirectory) {
  auto store = OpenStore();
  EXPECT_FALSE(store->has_manifest());
  EXPECT_EQ(store->next_seq(), 1u);
  EXPECT_EQ(store->live_segments(), 0u);
  EXPECT_EQ(store->live_bytes(), 0u);
  EXPECT_EQ(store->dir(), SegmentsDirFor(dir_));
  auto chain = store->ReadChain();
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(chain.value().empty());
}

TEST_F(SegmentStoreTest, WriteCommitReadChain) {
  auto store = OpenStore();
  const SegmentData first = MakeSegment(1, 0, 8);
  const SegmentData second = MakeSegment(2, 8, 4);
  auto first_bytes = store->WriteSegment(first);
  ASSERT_TRUE(first_bytes.ok());
  auto second_bytes = store->WriteSegment(second);
  ASSERT_TRUE(second_bytes.ok());

  ManifestData manifest;
  manifest.wal_epoch = 3;
  manifest.sealed_from = 0;
  manifest.sealed_to = 12;
  manifest.segments = {EntryFor(first, first_bytes.value()),
                       EntryFor(second, second_bytes.value())};
  ASSERT_TRUE(store->CommitManifest(manifest).ok());

  EXPECT_TRUE(store->has_manifest());
  EXPECT_EQ(store->next_seq(), 3u);
  EXPECT_EQ(store->live_segments(), 2u);
  EXPECT_EQ(store->live_bytes(), first_bytes.value() + second_bytes.value());

  auto chain = store->ReadChain();
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain.value().size(), 2u);
  EXPECT_EQ(chain.value()[0].series[0].values, first.series[0].values);
  EXPECT_EQ(chain.value()[1].series[1].values, second.series[1].values);
}

TEST_F(SegmentStoreTest, ReopenLoadsManifest) {
  {
    auto store = OpenStore();
    const SegmentData segment = MakeSegment(1, 0, 5);
    auto bytes = store->WriteSegment(segment);
    ASSERT_TRUE(bytes.ok());
    ManifestData manifest;
    manifest.wal_epoch = 2;
    manifest.sealed_to = 5;
    manifest.segments = {EntryFor(segment, bytes.value())};
    ASSERT_TRUE(store->CommitManifest(manifest).ok());
  }
  auto store = OpenStore();
  EXPECT_TRUE(store->has_manifest());
  EXPECT_EQ(store->manifest().wal_epoch, 2u);
  EXPECT_EQ(store->live_segments(), 1u);
  auto chain = store->ReadChain();
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain.value().size(), 1u);
}

TEST_F(SegmentStoreTest, OrphanSegmentsAndTmpFilesRemovedAtOpen) {
  {
    auto store = OpenStore();
    // A segment written but never committed — a crash between
    // WriteSegment and CommitManifest leaves exactly this.
    ASSERT_TRUE(store->WriteSegment(MakeSegment(1, 0, 5)).ok());
    std::ofstream tmp(SegmentsDirFor(dir_) + "/MANIFEST.tmp");
    tmp << "half-written";
  }
  auto store = OpenStore();
  EXPECT_FALSE(store->has_manifest());
  EXPECT_EQ(store->next_seq(), 1u);
  EXPECT_EQ(ReadSegmentFile(SegmentPath(SegmentsDirFor(dir_), 1))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadFileToString(SegmentsDirFor(dir_) + "/MANIFEST.tmp")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SegmentStoreTest, UnparsableManifestTreatedAsAbsent) {
  {
    auto store = OpenStore();
    std::ofstream manifest(SegmentsDirFor(dir_) + "/" + kManifestFileName);
    manifest << "not a manifest\n";
  }
  auto store = OpenStore();
  EXPECT_FALSE(store->has_manifest());
}

TEST_F(SegmentStoreTest, CorruptManifestQuarantinesInsteadOfDeleting) {
  // A committed chain whose manifest then rots (one flipped bit) must NOT
  // have its segments swept as "orphans": with the manifest unreadable
  // the referenced set is unknowable, and deleting would irreversibly
  // destroy the only copy of sealed history. Everything is quarantined
  // as *.corrupt for offline repair instead.
  const std::string dir = SegmentsDirFor(dir_);
  {
    auto store = OpenStore();
    const SegmentData segment = MakeSegment(1, 0, 5);
    auto bytes = store->WriteSegment(segment);
    ASSERT_TRUE(bytes.ok());
    ManifestData manifest;
    manifest.wal_epoch = 2;
    manifest.sealed_to = 5;
    manifest.offsets = {{1u, 123.0}};  // retention state only MANIFEST holds
    manifest.segments = {EntryFor(segment, bytes.value())};
    ASSERT_TRUE(store->CommitManifest(manifest).ok());
  }
  const std::string manifest_path = dir + "/" + kManifestFileName;
  auto raw = ReadFileToString(manifest_path);
  ASSERT_TRUE(raw.ok());
  std::string tampered = raw.value();
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x01);
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out << tampered;
  }

  auto store = OpenStore();
  EXPECT_FALSE(store->has_manifest());
  EXPECT_EQ(store->next_seq(), 1u);
  // The originals are gone from their live names...
  EXPECT_EQ(ReadFileToString(manifest_path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadSegmentFile(SegmentPath(dir, 1)).status().code(),
            StatusCode::kNotFound);
  // ...but the bytes survive under quarantine names.
  auto manifest_corrupt = ReadFileToString(manifest_path + ".corrupt");
  ASSERT_TRUE(manifest_corrupt.ok());
  EXPECT_EQ(manifest_corrupt.value(), tampered);
  auto segment_corrupt = ReadSegmentFile(SegmentPath(dir, 1) + ".corrupt");
  ASSERT_TRUE(segment_corrupt.ok()) << segment_corrupt.status().ToString();
  EXPECT_EQ(segment_corrupt.value().count, 5u);

  // Quarantined files are inert: a reopen neither resurrects nor deletes
  // them, and the store starts a fresh chain at seq 1.
  auto reopened = OpenStore();
  EXPECT_FALSE(reopened->has_manifest());
  EXPECT_TRUE(ReadFileToString(manifest_path + ".corrupt").ok());
}

TEST_F(SegmentStoreTest, DeleteSegmentFileIsIdempotent) {
  auto store = OpenStore();
  ASSERT_TRUE(store->WriteSegment(MakeSegment(1, 0, 5)).ok());
  EXPECT_TRUE(store->DeleteSegmentFile(1).ok());
  EXPECT_TRUE(store->DeleteSegmentFile(1).ok());  // already gone
}

// ---- chain validation ----------------------------------------------------

class SegmentChainTest : public SegmentStoreTest {};

TEST_F(SegmentChainTest, MissingFileRejectsChain) {
  auto store = OpenStore();
  const SegmentData segment = MakeSegment(1, 0, 5);
  auto bytes = store->WriteSegment(segment);
  ASSERT_TRUE(bytes.ok());
  ManifestData manifest;
  manifest.segments = {EntryFor(segment, bytes.value()),
                       {2, 5, 3, 2, 99}};  // never written
  EXPECT_FALSE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok());
}

TEST_F(SegmentChainTest, CorruptedFileRejectsChain) {
  auto store = OpenStore();
  const SegmentData segment = MakeSegment(1, 0, 5);
  auto bytes = store->WriteSegment(segment);
  ASSERT_TRUE(bytes.ok());
  ManifestData manifest;
  manifest.segments = {EntryFor(segment, bytes.value())};
  ASSERT_TRUE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok());

  // Flip one payload byte in place; the chain must reject it.
  const std::string path = SegmentPath(SegmentsDirFor(dir_), 1);
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string tampered = raw.value();
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x40);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << tampered;
  out.close();
  EXPECT_FALSE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok());
}

TEST_F(SegmentChainTest, ManifestDisagreementRejectsChain) {
  auto store = OpenStore();
  const SegmentData segment = MakeSegment(1, 0, 5);
  auto bytes = store->WriteSegment(segment);
  ASSERT_TRUE(bytes.ok());
  for (const char* what : {"count", "start", "bytes", "series"}) {
    ManifestData manifest;
    ManifestSegment entry = EntryFor(segment, bytes.value());
    if (std::string(what) == "count") entry.count = 4;
    if (std::string(what) == "start") entry.start_time = 1;
    if (std::string(what) == "bytes") entry.bytes += 1;
    if (std::string(what) == "series") entry.num_series = 3;
    manifest.segments = {entry};
    EXPECT_FALSE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok())
        << "disagreement on " << what << " not caught";
  }
}

TEST_F(SegmentChainTest, RangeGapRejectsChain) {
  auto store = OpenStore();
  const SegmentData first = MakeSegment(1, 0, 5);
  const SegmentData second = MakeSegment(2, 6, 3);  // gap: period 5 missing
  auto first_bytes = store->WriteSegment(first);
  auto second_bytes = store->WriteSegment(second);
  ASSERT_TRUE(first_bytes.ok());
  ASSERT_TRUE(second_bytes.ok());
  ManifestData manifest;
  manifest.segments = {EntryFor(first, first_bytes.value()),
                       EntryFor(second, second_bytes.value())};
  EXPECT_FALSE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok());
}

TEST_F(SegmentChainTest, NodeSetMismatchRejectsChain) {
  auto store = OpenStore();
  const SegmentData first = MakeSegment(1, 0, 5);
  SegmentData second = MakeSegment(2, 5, 3);
  second.series[1].node = 9;  // different node set than the first segment
  auto first_bytes = store->WriteSegment(first);
  auto second_bytes = store->WriteSegment(second);
  ASSERT_TRUE(first_bytes.ok());
  ASSERT_TRUE(second_bytes.ok());
  ManifestData manifest;
  manifest.segments = {EntryFor(first, first_bytes.value()),
                       EntryFor(second, second_bytes.value())};
  EXPECT_FALSE(ReadSegmentChain(SegmentsDirFor(dir_), manifest).ok());
}

}  // namespace
}  // namespace f2db::storage
