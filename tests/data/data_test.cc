#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/csv.h"
#include "data/cube_io.h"
#include "data/datasets.h"
#include "data/sarima_generator.h"
#include "math/stats.h"
#include "testing/test_cubes.h"

namespace f2db {
namespace {

TEST(SarimaGenerator, DeterministicForSeed) {
  SarimaProcess process;
  process.order.p = 1;
  process.phi = {0.5};
  Rng a(1), b(1);
  const TimeSeries s1 = SimulateSarima(process, 50, a);
  const TimeSeries s2 = SimulateSarima(process, 50, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i], s2[i]);
  }
}

TEST(SarimaGenerator, Ar1HasExpectedAutocorrelation) {
  SarimaProcess process;
  process.order.p = 1;
  process.phi = {0.8};
  Rng rng(2);
  const TimeSeries series = SimulateSarima(process, 5000, rng);
  const auto acf = Autocorrelation(series.values(), 2);
  EXPECT_NEAR(acf[1], 0.8, 0.05);
  EXPECT_NEAR(acf[2], 0.64, 0.08);
}

TEST(SarimaGenerator, SeasonalDifferencingCreatesSeasonality) {
  SarimaProcess process;
  process.order.sd = 1;
  process.order.season = 12;
  process.noise_stddev = 0.1;
  Rng rng(3);
  const TimeSeries series = SimulateSarima(process, 600, rng);
  const auto acf = Autocorrelation(series.values(), 12);
  EXPECT_GT(acf[12], 0.5) << "seasonal integration implies high lag-12 ACF";
}

TEST(SarimaGenerator, IntegrationProducesTrendingSeries) {
  SarimaProcess process;
  process.order.d = 1;
  process.mean = 1.0;  // drift
  process.noise_stddev = 0.1;
  Rng rng(4);
  const TimeSeries series = SimulateSarima(process, 200, rng);
  EXPECT_GT(series[199] - series[0], 150.0);
}

TEST(GenXLevels, FollowsPaperRule) {
  EXPECT_EQ(GenXLevels(100), 3u);
  EXPECT_EQ(GenXLevels(999), 3u);
  EXPECT_EQ(GenXLevels(1000), 4u);
  EXPECT_EQ(GenXLevels(9999), 4u);
  EXPECT_EQ(GenXLevels(10000), 5u);
  EXPECT_EQ(GenXLevels(99999), 5u);
  EXPECT_EQ(GenXLevels(100000), 6u);
}

TEST(GenX, GraphShapeMatchesRule) {
  auto data = MakeGenX(100, 1, 30);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().graph.num_base_nodes(), 100u);
  // 3 levels total: base + one intermediate + ALL = 2 declared levels.
  EXPECT_EQ(data.value().graph.schema().hierarchy(0).num_levels(), 2u);

  auto big = MakeGenX(1000, 1, 10);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().graph.schema().hierarchy(0).num_levels(), 3u);
}

TEST(GenX, SeriesArePositiveAndAggregatesBuilt) {
  auto data = MakeGenX(50, 2, 40);
  ASSERT_TRUE(data.ok());
  const TimeSeriesGraph& graph = data.value().graph;
  EXPECT_EQ(graph.series_length(), 40u);
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    for (std::size_t t = 0; t < graph.series_length(); ++t) {
      EXPECT_GT(graph.series(node)[t], 0.0);
    }
  }
}

TEST(GenX, RejectsDegenerateSize) {
  EXPECT_FALSE(MakeGenX(1).ok());
}

TEST(Datasets, TourismShape) {
  auto data = MakeTourism();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().graph.num_base_nodes(), 32u);  // 4 purposes x 8 states
  EXPECT_EQ(data.value().graph.series_length(), 32u);   // quarterly 2004-2011
  EXPECT_EQ(data.value().season, 4u);
  EXPECT_EQ(data.value().graph.num_nodes(), 45u);
}

TEST(Datasets, SalesShape) {
  auto data = MakeSales();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().graph.num_base_nodes(), 27u);  // 9 products x 3 countries
  EXPECT_EQ(data.value().graph.series_length(), 72u);   // monthly 2004-2009
  EXPECT_EQ(data.value().season, 12u);
}

TEST(Datasets, EnergyShape) {
  auto data = MakeEnergy(3, 240);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().graph.num_base_nodes(), 86u);
  EXPECT_EQ(data.value().graph.series_length(), 240u);
  EXPECT_EQ(data.value().season, 24u);
}

TEST(Datasets, DeterministicForSeed) {
  auto a = MakeSales(5);
  auto b = MakeSales(5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const NodeId node = a.value().graph.base_nodes()[3];
  for (std::size_t t = 0; t < a.value().graph.series_length(); ++t) {
    EXPECT_DOUBLE_EQ(a.value().graph.series(node)[t],
                     b.value().graph.series(node)[t]);
  }
}

TEST(Datasets, EnergyHasDailySeasonality) {
  auto data = MakeEnergy(3, 480);
  ASSERT_TRUE(data.ok());
  const TimeSeries& top =
      data.value().graph.series(data.value().graph.top_node());
  const auto acf = Autocorrelation(top.values(), 24);
  EXPECT_GT(acf[24], 0.5);
}

TEST(CubeIo, SaveLoadRoundTrip) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(20, 0.1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_facts_test.csv")
          .string();
  ASSERT_TRUE(SaveFactsCsv(graph, path).ok());

  // Rebuild the same schema and load.
  const TimeSeriesGraph empty = testing::MakeFigure2Cube(20, 0.1);
  auto loaded = LoadFactsCsv(empty.schema(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().series_length(), 20u);
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    for (std::size_t t = 0; t < 20; ++t) {
      EXPECT_NEAR(loaded.value().series(node)[t], graph.series(node)[t], 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(CubeIo, LoadRejectsIncompleteCoverage) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(10, 0.1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_facts_partial.csv")
          .string();
  ASSERT_TRUE(SaveFactsCsv(graph, path).ok());
  // Truncate: drop the last line (one missing observation).
  auto doc = ReadCsvFile(path, true);
  ASSERT_TRUE(doc.ok());
  doc.value().rows.pop_back();
  ASSERT_TRUE(WriteCsvFile(path, doc.value()).ok());

  auto loaded = LoadFactsCsv(graph.schema(), path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CubeIo, LoadRejectsDuplicateFacts) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(5, 0.1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_facts_dup.csv").string();
  ASSERT_TRUE(SaveFactsCsv(graph, path).ok());
  auto doc = ReadCsvFile(path, true);
  ASSERT_TRUE(doc.ok());
  doc.value().rows.push_back(doc.value().rows.front());
  ASSERT_TRUE(WriteCsvFile(path, doc.value()).ok());
  EXPECT_FALSE(LoadFactsCsv(graph.schema(), path).ok());
  std::remove(path.c_str());
}

TEST(CubeIo, LoadRejectsUnknownValues) {
  const TimeSeriesGraph graph = testing::MakeFigure2Cube(5, 0.1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "f2db_facts_unknown.csv")
          .string();
  ASSERT_TRUE(SaveFactsCsv(graph, path).ok());
  auto doc = ReadCsvFile(path, true);
  ASSERT_TRUE(doc.ok());
  doc.value().rows[0][0] = "C99";
  ASSERT_TRUE(WriteCsvFile(path, doc.value()).ok());
  EXPECT_FALSE(LoadFactsCsv(graph.schema(), path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace f2db
