// Standalone F2DB server.
//
// Boots the Tourism demo cube, advises a configuration, and serves the
// statement dialect over TCP until SIGTERM/SIGINT (graceful drain):
//
//   build/examples/f2db_serve [port]         # default 2113, 0 = ephemeral
//
// Talk to it with build/examples/f2db_client, or any client that speaks
// the length-prefixed wire protocol (see DESIGN.md §8).

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "baselines/advisor_builder.h"
#include "data/datasets.h"
#include "engine/engine.h"
#include "server/server.h"

int main(int argc, char** argv) {
  using namespace f2db;

  std::uint16_t port = 2113;
  if (argc > 1) port = static_cast<std::uint16_t>(std::atoi(argv[1]));

  auto data = MakeTourism();
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(
      ModelSpec::TripleExponentialSmoothing(data.value().season));
  AdvisorOptions advisor_options;
  advisor_options.models_per_iteration = 8;
  AdvisorBuilder advisor(advisor_options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }

  auto engine_data = MakeTourism();
  F2dbEngine engine(std::move(engine_data.value().graph));
  if (!engine.LoadConfiguration(built.value().configuration, evaluator).ok()) {
    std::fprintf(stderr, "engine load failed\n");
    return 1;
  }

  ServerOptions options;
  options.port = port;
  F2dbServer server(engine, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!F2dbServer::InstallSigtermShutdown(&server).ok()) {
    std::fprintf(stderr, "could not install SIGTERM handler\n");
    return 1;
  }
  ::signal(SIGINT, [](int) { ::raise(SIGTERM); });

  std::printf("f2db_serve: tourism cube (%zu models) on 127.0.0.1:%u — "
              "SIGTERM drains and exits\n",
              engine.num_models(), server.port());
  while (server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Shutdown();
  std::printf("f2db_serve: drained, bye\n");
  return 0;
}
