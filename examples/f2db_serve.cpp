// Standalone F2DB server.
//
// Boots the Tourism demo cube, advises a configuration, and serves the
// statement dialect over TCP until SIGTERM/SIGINT (graceful drain):
//
//   build/examples/f2db_serve [port] [--data-dir DIR] [--fsync POLICY]
//                             [--checkpoint-interval SECONDS]
//                             [--compaction-interval SECONDS]
//                             [--retention-window PERIODS]
//                             [--reactors N] [--shards M]
//
//   port                  listen port; default 2113, 0 = ephemeral
//   --data-dir DIR        run durably: WAL + checkpoints in DIR. On boot an
//                         existing DIR is recovered (checkpoint + WAL tail)
//                         and the advised configuration is NOT re-applied;
//                         an empty DIR starts fresh. SIGTERM writes a final
//                         checkpoint after the drain. With --shards M > 1
//                         each shard keeps its own WAL/checkpoint chain in
//                         DIR/shard-<k> and recovery runs per shard in
//                         parallel.
//   --fsync POLICY        none | batch | always (default batch)
//   --checkpoint-interval background checkpoint cadence in seconds
//                         (default 60; 0 = shutdown checkpoint only)
//   --compaction-interval background compaction cadence in seconds: closed
//                         WAL history is sealed into compressed segments
//                         under DIR/segments (per shard with --shards) and
//                         the sealed WAL prefix deleted (default 300;
//                         0 = shutdown compaction only). Requires
//                         --data-dir.
//   --retention-window    drop raw history sealed more than PERIODS behind
//                         the time frontier at compaction time; model
//                         state, aggregates, and derivation sums survive.
//                         Size it to at least the model warm-up window
//                         (default 0 = keep everything).
//   --reactors N          epoll reactor threads (default 1). Each reactor
//                         owns its connections exclusively; with N > 1 the
//                         listener uses SO_REUSEPORT per-reactor sockets,
//                         falling back to a single accept thread with
//                         round-robin hand-off where unavailable.
//   --shards M            hash-partition the cube across M independent
//                         engine shards (default 1 = unsharded). Sharded
//                         serving loads the shardable configuration (one
//                         model per base cell, covering schemes) instead
//                         of the advisor's, because advised models at
//                         aggregate nodes span shards. Cross-shard
//                         aggregates answer by scatter-gather.
//
// Talk to it with build/examples/f2db_client, or any client that speaks
// the length-prefixed wire protocol (see DESIGN.md §8; sharding §11).

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "baselines/advisor_builder.h"
#include "data/datasets.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "server/server.h"

int main(int argc, char** argv) {
  using namespace f2db;

  std::uint16_t port = 2113;
  std::size_t reactors = 1;
  std::size_t shards = 1;
  EngineOptions engine_options;
  engine_options.checkpoint_interval_seconds = 60.0;
  engine_options.compaction_interval_seconds = 300.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data-dir") {
      engine_options.data_dir = value();
    } else if (arg == "--fsync") {
      auto policy = ParseFsyncPolicy(value());
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return 2;
      }
      engine_options.fsync_policy = policy.value();
    } else if (arg == "--checkpoint-interval") {
      engine_options.checkpoint_interval_seconds = std::atof(value());
    } else if (arg == "--compaction-interval") {
      engine_options.compaction_interval_seconds = std::atof(value());
    } else if (arg == "--retention-window") {
      const int periods = std::atoi(value());
      if (periods < 0) {
        std::fprintf(stderr, "--retention-window must be >= 0\n");
        return 2;
      }
      engine_options.retention_window = static_cast<std::size_t>(periods);
    } else if (arg == "--reactors") {
      reactors = static_cast<std::size_t>(std::atoi(value()));
      if (reactors == 0) {
        std::fprintf(stderr, "--reactors must be >= 1\n");
        return 2;
      }
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::atoi(value()));
      if (shards == 0) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  auto data = MakeTourism();
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<F2dbEngine> engine;
  std::unique_ptr<ShardedEngine> sharded;
  EngineInterface* serving = nullptr;
  std::size_t num_models = 0;
  auto engine_data = MakeTourism();

  if (shards > 1) {
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.engine = engine_options;
    auto opened =
        ShardedEngine::Open(engine_data.value().graph, sharded_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "sharded open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    sharded = std::move(opened.value());
    const auto count_models = [&] {
      std::size_t total = 0;
      for (const std::size_t p : sharded->active_partitions()) {
        total += sharded->shard(p)->num_models();
      }
      return total;
    };
    num_models = count_models();
    if (num_models == 0) {
      // Fresh shards: the advisor's configuration places models at
      // aggregate nodes, which span shards — load the canonical
      // shardable layout (one model per base cell, covering schemes).
      auto config = BuildShardableConfiguration(
          data.value().graph,
          ModelSpec::TripleExponentialSmoothing(data.value().season), 0.8);
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return 1;
      }
      if (!sharded->LoadConfiguration(config.value(), 0.8).ok()) {
        std::fprintf(stderr, "sharded load failed\n");
        return 1;
      }
      num_models = count_models();
    } else {
      const EngineStats stats = sharded->stats();
      std::printf("f2db_serve: recovered %zu models across %zu shards "
                  "from %s (%zu WAL records replayed)\n",
                  num_models, sharded->num_active_shards(),
                  engine_options.data_dir.c_str(),
                  stats.wal_records_replayed);
    }
    serving = sharded.get();
  } else {
    ConfigurationEvaluator evaluator(data.value().graph, 0.8);
    ModelFactory factory(
        ModelSpec::TripleExponentialSmoothing(data.value().season));
    if (engine_options.data_dir.empty()) {
      engine = std::make_unique<F2dbEngine>(
          std::move(engine_data.value().graph));
    } else {
      auto opened = F2dbEngine::Open(std::move(engine_data.value().graph),
                                     engine_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      engine = std::move(opened.value());
    }

    // A recovered engine already carries its configuration (replayed from
    // the checkpoint/WAL); only a fresh engine needs the advisor's.
    if (engine->num_models() == 0) {
      AdvisorOptions advisor_options;
      advisor_options.models_per_iteration = 8;
      AdvisorBuilder advisor(advisor_options);
      auto built = advisor.Build(evaluator, factory);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
        return 1;
      }
      if (!engine->LoadConfiguration(built.value().configuration, evaluator)
               .ok()) {
        std::fprintf(stderr, "engine load failed\n");
        return 1;
      }
    } else {
      const EngineStats stats = engine->stats();
      std::printf("f2db_serve: recovered %zu models from %s "
                  "(%zu WAL records replayed in %.1f ms)\n",
                  engine->num_models(), engine_options.data_dir.c_str(),
                  stats.wal_records_replayed, stats.recovery_duration_ms);
    }
    num_models = engine->num_models();
    serving = engine.get();
  }

  ServerOptions options;
  options.port = port;
  options.reactor_threads = reactors;
  F2dbServer server(*serving, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!F2dbServer::InstallSigtermShutdown(&server).ok()) {
    std::fprintf(stderr, "could not install SIGTERM handler\n");
    return 1;
  }
  ::signal(SIGINT, [](int) { ::raise(SIGTERM); });

  std::printf("f2db_serve: tourism cube (%zu models, %zu reactor%s, "
              "%zu shard%s%s) on 127.0.0.1:%u%s%s — SIGTERM drains and "
              "exits\n",
              num_models, reactors, reactors == 1 ? "" : "s", shards,
              shards == 1 ? "" : "s",
              server.accept_handoff_active() ? ", accept hand-off" : "",
              server.port(), serving->durable() ? ", durable in " : "",
              serving->durable() ? engine_options.data_dir.c_str() : "");
  while (server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Shutdown();
  std::printf("f2db_serve: drained, bye\n");
  return 0;
}
