// Interactive F2DB shell.
//
// Boots a demo cube (the Tourism stand-in), advises a configuration, and
// drops into a read-eval-print loop over the full statement dialect:
//
//   f2db> SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '4'
//   f2db> EXPLAIN SELECT time, visitors FROM facts WHERE state = 'S2' AS OF now() + '1'
//   f2db> INSERT INTO facts VALUES ('holiday', 'S1', 32, 210.5)
//   f2db> \schema   \stats   \models   \help   \quit
//
// Also scriptable:  echo "SELECT ..." | build/examples/f2db_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/advisor_builder.h"
#include "data/datasets.h"
#include "engine/engine.h"

namespace {

using namespace f2db;

void PrintHelp() {
  std::printf(
      "statements:\n"
      "  SELECT time, [SUM(]<measure>[)] FROM facts [WHERE <level> = "
      "'<value>' [AND ...]] [GROUP BY time] AS OF now() + '<h>'\n"
      "  EXPLAIN SELECT ...\n"
      "  INSERT INTO facts VALUES ('<dim value>', ..., <time>, <value>)\n"
      "commands:\n"
      "  \\schema  dimension hierarchies\n"
      "  \\models  stored models\n"
      "  \\stats   engine counters\n"
      "  \\help    this text\n"
      "  \\quit    exit\n");
}

void PrintSchema(const F2dbEngine& engine) {
  const CubeSchema& schema = engine.graph().schema();
  for (std::size_t d = 0; d < schema.num_dimensions(); ++d) {
    const Hierarchy& h = schema.hierarchy(d);
    std::printf("dimension %s:", h.name().c_str());
    for (LevelIndex l = 0; l <= h.num_levels(); ++l) {
      std::printf(" %s(%zu)", h.level_name(l).c_str(), h.num_values(l));
      if (l < h.num_levels()) std::printf(" ->");
    }
    std::printf("\n");
  }
  std::printf("%zu nodes, %zu base series, %zu observations\n",
              engine.graph().num_nodes(), engine.graph().num_base_nodes(),
              engine.graph().series_length());
}

void PrintModels(const F2dbEngine& engine) {
  auto catalog = engine.ExportCatalog();
  if (!catalog.ok()) {
    std::printf("error: %s\n", catalog.status().ToString().c_str());
    return;
  }
  for (const ModelRow& row : catalog.value().model_table()) {
    const std::size_t semi = row.payload.find(';');
    std::printf("  node %4u  %-18s %s\n", row.node,
                row.payload.substr(0, semi).c_str(),
                engine.graph().NodeName(row.node).c_str());
  }
  std::printf("%zu models\n", catalog.value().model_table().size());
}

void PrintStats(const F2dbEngine& engine) {
  const EngineStats s = engine.stats();
  std::printf(
      "queries=%zu inserts=%zu advances=%zu reestimates=%zu "
      "query_time=%.3fms maintenance_time=%.3fms pending=%zu "
      "snapshot_version=%llu\n",
      s.queries, s.inserts, s.time_advances, s.reestimates,
      1e3 * s.total_query_seconds, 1e3 * s.total_maintenance_seconds,
      engine.pending_inserts(),
      static_cast<unsigned long long>(engine.snapshot()->version));
}

}  // namespace

int main() {
  auto data = MakeTourism();
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(
      ModelSpec::TripleExponentialSmoothing(data.value().season));
  AdvisorOptions options;
  options.models_per_iteration = 8;
  AdvisorBuilder advisor(options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }

  auto engine_data = MakeTourism();
  F2dbEngine engine(std::move(engine_data.value().graph));
  if (!engine.LoadConfiguration(built.value().configuration, evaluator).ok()) {
    std::fprintf(stderr, "engine load failed\n");
    return 1;
  }

  std::printf("f2db shell — tourism demo cube loaded (%zu models). \\help "
              "for help.\n",
              engine.num_models());
  std::string line;
  for (;;) {
    std::printf("f2db> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\schema") {
        PrintSchema(engine);
      } else if (line == "\\models") {
        PrintModels(engine);
      } else if (line == "\\stats") {
        PrintStats(engine);
      } else {
        std::printf("unknown command %s (try \\help)\n", line.c_str());
      }
      continue;
    }
    auto output = engine.ExecuteStatementText(line);
    if (!output.ok()) {
      std::printf("error: %s\n", output.status().ToString().c_str());
      continue;
    }
    std::fputs(output.value().c_str(), stdout);
  }
  std::printf("\n");
  return 0;
}
