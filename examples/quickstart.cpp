// Quickstart: build a small sales cube, let the model configuration
// advisor pick the forecast models, load the result into the embedded
// F2DB engine, and answer the two forecast queries from Figure 1 of the
// paper.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/advisor.h"
#include "cube/graph.h"
#include "engine/engine.h"
#include "ts/model_factory.h"

namespace {

using namespace f2db;

// A cube like Figure 1/2 of the paper: cities C1..C4 rolling up into
// regions R1/R2, crossed with products P1..P4; monthly sales history.
Result<TimeSeriesGraph> BuildSalesCube() {
  Hierarchy location("location");
  F2DB_RETURN_IF_ERROR(location.AddLevel("city", {"C1", "C2", "C3", "C4"}));
  F2DB_RETURN_IF_ERROR(location.AddLevel("region", {"R1", "R2"}));
  F2DB_RETURN_IF_ERROR(location.SetParent(0, 0, 0));  // C1 -> R1
  F2DB_RETURN_IF_ERROR(location.SetParent(0, 1, 0));  // C2 -> R1
  F2DB_RETURN_IF_ERROR(location.SetParent(0, 2, 1));  // C3 -> R2
  F2DB_RETURN_IF_ERROR(location.SetParent(0, 3, 1));  // C4 -> R2
  F2DB_RETURN_IF_ERROR(location.Finalize());

  CubeSchema schema;
  F2DB_RETURN_IF_ERROR(schema.AddHierarchy(std::move(location)));
  F2DB_RETURN_IF_ERROR(schema.AddHierarchy(
      Hierarchy::Flat("productdim", {"P1", "P2", "P3", "P4"})));

  F2DB_ASSIGN_OR_RETURN(TimeSeriesGraph graph,
                        TimeSeriesGraph::Create(std::move(schema)));

  // Five years of monthly sales with a seasonal peak in December.
  Rng rng(2013);
  for (NodeId node : graph.base_nodes()) {
    const double scale = rng.Uniform(50.0, 300.0);
    std::vector<double> values(60);
    for (std::size_t t = 0; t < values.size(); ++t) {
      const double season = (t % 12 == 11) ? 1.6 : 1.0 + 0.1 * ((t % 12) / 11.0);
      values[t] = scale * season * (1.0 + rng.Gaussian(0.0, 0.05));
    }
    F2DB_RETURN_IF_ERROR(graph.SetBaseSeries(node, TimeSeries(values)));
  }
  F2DB_RETURN_IF_ERROR(graph.BuildAggregates());
  return graph;
}

}  // namespace

int main() {
  // 1. Build the multi-dimensional data set (the time series hyper graph).
  auto graph = BuildSalesCube();
  if (!graph.ok()) {
    std::fprintf(stderr, "cube: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("cube: %zu nodes (%zu base time series)\n",
              graph.value().num_nodes(), graph.value().num_base_nodes());

  // 2. Run the model configuration advisor (triple exponential smoothing,
  //    season 12, as in the paper's evaluation).
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  AdvisorOptions options;
  options.models_per_iteration = 8;
  ModelConfigurationAdvisor advisor(graph.value(), factory, options);
  auto result = advisor.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "advisor: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "advisor: %zu iterations, %zu models kept (of %zu created), "
      "error %.4f\n",
      result.value().iterations, result.value().configuration.num_models(),
      result.value().models_created, result.value().final_error);

  // 3. Load the configuration into the engine and process forecast queries.
  F2dbEngine engine(std::move(graph).value());
  const Status loaded = engine.LoadConfiguration(result.value().configuration,
                                                 advisor.evaluator());
  if (!loaded.ok()) {
    std::fprintf(stderr, "engine: %s\n", loaded.ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      // Figure 1, Query 1: base series forecast.
      "SELECT time, sales FROM facts WHERE productdim = 'P4' AND city = 'C4' "
      "AS OF now() + '1'",
      // Figure 1, Query 2: aggregated series forecast.
      "SELECT time, SUM(sales) FROM facts WHERE productdim = 'P4' AND region "
      "= 'R2' GROUP BY time AS OF now() + '3'",
  };
  for (const char* sql : queries) {
    std::printf("\n%s\n", sql);
    auto answer = engine.ExecuteSql(sql);
    if (!answer.ok()) {
      std::fprintf(stderr, "  error: %s\n", answer.status().ToString().c_str());
      continue;
    }
    for (const ForecastRow& row : answer.value().rows) {
      std::printf("  t=%lld  forecast=%.2f\n",
                  static_cast<long long>(row.time), row.value);
    }
  }

  // 4. The same aggregate query with 95% prediction intervals.
  auto banded = engine.ExecuteSql(
      "SELECT time, SUM(sales) FROM facts WHERE region = 'R2' GROUP BY time "
      "AS OF now() + '3' WITH INTERVALS 0.95");
  if (banded.ok()) {
    std::printf("\nregion R2 with 95%% intervals:\n");
    for (const ForecastRow& row : banded.value().rows) {
      std::printf("  t=%lld  %.2f  [%.2f, %.2f]\n",
                  static_cast<long long>(row.time), row.value, row.lower,
                  row.upper);
    }
  }
  return 0;
}
