// CSV workflow: export a cube's fact data to CSV, reload it against a
// schema, auto-select models per node, and answer ad-hoc forecast queries
// typed as SQL strings — the full offline tool chain a practitioner would
// script around the library.
//
//   build/examples/csv_workflow

#include <cstdio>

#include "core/advisor.h"
#include "data/cube_io.h"
#include "data/datasets.h"
#include "engine/engine.h"

int main() {
  using namespace f2db;

  // 1. Materialize a fact CSV from the Tourism stand-in data set.
  auto data = MakeTourism();
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const std::string path = "/tmp/f2db_tourism_facts.csv";
  if (const Status s = SaveFactsCsv(data.value().graph, path); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("facts exported to %s\n", path.c_str());

  // 2. Reload against the schema (as an external pipeline would).
  auto loaded = LoadFactsCsv(data.value().graph.schema(), path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded %zu base series x %zu observations\n",
              loaded.value().num_base_nodes(), loaded.value().series_length());

  // 3. Advise with automatic per-node model selection (kAuto picks among
  //    naive, smoothing, and ARIMA families on a holdout).
  ModelFactory factory(ModelSpec::Auto(/*period=*/4));
  AdvisorOptions options;
  options.models_per_iteration = 4;
  options.stop.max_iterations = 30;
  ModelConfigurationAdvisor advisor(loaded.value(), factory, options);
  auto result = advisor.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "advisor: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("advisor: error %.4f with %zu models\n",
              result.value().final_error,
              result.value().configuration.num_models());

  // 4. Interactive-style queries.
  F2dbEngine engine(std::move(loaded).value());
  if (!engine
           .LoadConfiguration(result.value().configuration,
                              advisor.evaluator())
           .ok()) {
    std::fprintf(stderr, "engine load failed\n");
    return 1;
  }
  const char* queries[] = {
      "SELECT time, SUM(visitors) FROM facts WHERE purpose = 'holiday' GROUP "
      "BY time AS OF now() + '4'",
      "SELECT time, visitors FROM facts WHERE purpose = 'business' AND state "
      "= 'S3' AS OF now() + '2'",
      "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '1'",
  };
  for (const char* sql : queries) {
    std::printf("\n%s\n", sql);
    auto answer = engine.ExecuteSql(sql);
    if (!answer.ok()) {
      std::printf("  error: %s\n", answer.status().ToString().c_str());
      continue;
    }
    for (const ForecastRow& row : answer.value().rows) {
      std::printf("  t=%lld  %.2f\n", static_cast<long long>(row.time),
                  row.value);
    }
  }
  std::remove(path.c_str());
  return 0;
}
