// Sales planning scenario: compare every configuration approach of the
// paper on the Sales data set, watch the advisor's iterative output (the
// paper's "output phase" — the user can interrupt at any time), and
// persist the winning configuration to a catalog file.
//
//   build/examples/sales_advisor

#include <cstdio>

#include "baselines/advisor_builder.h"
#include "baselines/bottom_up.h"
#include "baselines/combine.h"
#include "baselines/direct.h"
#include "baselines/greedy.h"
#include "baselines/top_down.h"
#include "data/datasets.h"
#include "engine/engine.h"

int main() {
  using namespace f2db;

  auto data = MakeSales();
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("sales cube: %zu nodes, %zu base series, %zu observations\n\n",
              data.value().graph.num_nodes(),
              data.value().graph.num_base_nodes(),
              data.value().graph.series_length());

  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(
      ModelSpec::TripleExponentialSmoothing(data.value().season));

  // Compare all approaches (Section VI-B).
  DirectBuilder direct;
  BottomUpBuilder bottom_up;
  TopDownBuilder top_down;
  CombineBuilder combine;
  GreedyBuilder greedy;
  AdvisorOptions options;
  options.models_per_iteration = 8;
  options.verbose = false;
  AdvisorBuilder advisor(options);

  std::printf("%-10s %10s %8s %10s\n", "approach", "error", "models",
              "seconds");
  for (ConfigurationBuilder* builder :
       std::vector<ConfigurationBuilder*>{&direct, &bottom_up, &top_down,
                                          &combine, &greedy, &advisor}) {
    auto outcome = builder->Build(evaluator, factory);
    if (!outcome.ok()) {
      std::printf("%-10s %s\n", builder->name().c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %10.4f %8zu %10.3f\n", builder->name().c_str(),
                outcome.value().configuration.MeanError(),
                outcome.value().configuration.num_models(),
                outcome.value().build_seconds);
  }

  // Show the advisor's intermediate output (error/cost per iteration).
  std::printf("\nadvisor iteration history (error, models, alpha):\n");
  if (advisor.last_result() != nullptr) {
    for (const AdvisorSnapshot& s : advisor.last_result()->history) {
      std::printf("  it %2zu: error=%.4f models=%2zu alpha=%.1f\n",
                  s.iteration, s.error, s.num_models, s.alpha);
    }
  }

  // Persist the advisor configuration via the engine catalog tables.
  auto rebuilt = MakeSales();
  F2dbEngine engine(std::move(rebuilt.value().graph));
  AdvisorBuilder persisting(options);
  auto final_outcome = persisting.Build(evaluator, factory);
  if (final_outcome.ok() &&
      engine.LoadConfiguration(final_outcome.value().configuration, evaluator)
          .ok()) {
    auto catalog = engine.ExportCatalog();
    if (catalog.ok()) {
      const std::string path = "/tmp/f2db_sales_catalog.txt";
      if (catalog.value().Save(path).ok()) {
        std::printf("\nconfiguration stored: %s (%zu schemes, %zu models)\n",
                    path.c_str(), catalog.value().scheme_table().size(),
                    catalog.value().model_table().size());
      }
    }
  }
  return 0;
}
