// Smart-grid scenario (paper Section I): near-real-time energy demand
// forecasting over a customer hierarchy, with streaming inserts.
//
// Demonstrates the engine's maintenance processor: hourly readings arrive
// per customer, time advances when the batch is complete, model states are
// updated incrementally, and parameter re-estimation happens lazily when an
// invalidated model is referenced by a query.
//
//   build/examples/smartgrid_streaming

#include <cstdio>

#include "baselines/advisor_builder.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "engine/engine.h"

int main() {
  using namespace f2db;

  // 86 customers, hourly demand, daily seasonality (period 24).
  auto data = MakeEnergy(/*seed=*/3, /*length=*/504);  // 3 weeks history
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(24));

  AdvisorOptions options;
  options.models_per_iteration = 8;
  AdvisorBuilder advisor(options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  std::printf("advisor configuration: %zu models, error %.4f\n",
              built.value().configuration.num_models(),
              built.value().configuration.MeanError());

  auto engine_data = MakeEnergy(3, 504);
  EngineOptions engine_options;
  engine_options.reestimate_after_updates = 24;  // re-estimate daily
  F2dbEngine engine(std::move(engine_data.value().graph), engine_options);
  if (!engine.LoadConfiguration(built.value().configuration, evaluator).ok()) {
    std::fprintf(stderr, "engine load failed\n");
    return 1;
  }

  // Stream 48 hours of new readings; after every hour, ask for the next-day
  // total grid load (top node, horizon 24).
  Rng rng(77);
  // Copy: maintenance publishes a fresh snapshot on every time advance, so
  // references into engine.graph() must not be held across inserts.
  const std::vector<NodeId> customers = engine.graph().base_nodes();
  for (int hour = 0; hour < 48; ++hour) {
    const std::int64_t t = engine.graph().series(customers[0]).end_time();
    for (NodeId customer : customers) {
      const TimeSeries& history = engine.graph().series(customer);
      const double last_day = history[history.size() - 24];
      const double reading = last_day * (1.0 + rng.Gaussian(0.0, 0.1));
      const Status inserted =
          engine.InsertFact(customer, t, reading < 0.05 ? 0.05 : reading);
      if (!inserted.ok()) {
        std::fprintf(stderr, "insert: %s\n", inserted.ToString().c_str());
        return 1;
      }
    }
    if (hour % 12 == 0) {
      auto forecast = engine.ForecastNode(engine.graph().top_node(), 24);
      if (forecast.ok()) {
        double day_total = 0.0;
        for (double v : forecast.value()) day_total += v;
        std::printf("hour %2d: next-24h grid load forecast = %.1f\n", hour,
                    day_total);
      }
    }
  }

  const EngineStats stats = engine.stats();
  std::printf(
      "\nmaintenance summary: %zu inserts, %zu time advances, %zu lazy "
      "re-estimations\n",
      stats.inserts, stats.time_advances, stats.reestimates);
  std::printf("query latency: %.1f us avg over %zu queries\n",
              stats.queries ? 1e6 * stats.total_query_seconds /
                                  static_cast<double>(stats.queries)
                            : 0.0,
              stats.queries);
  return 0;
}
