// Command-line client for a running f2db_server.
//
//   build/examples/f2db_client [host [port]]     # default 127.0.0.1:2113
//
// Reads statements from stdin, one per line, and prints the response body
// plus the status / degradation annotations carried in the response
// header. Lines starting with '\' are client commands:
//
//   \ping    liveness round trip
//   \stats   Prometheus text from the STATS frame
//   \quit    exit
//
// Everything else is sent as a QUERY frame, except lines starting with
// INSERT which use the INSERT frame.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/client.h"

namespace {

const char* DegradationName(f2db::DegradationLevel level) {
  switch (level) {
    case f2db::DegradationLevel::kNone: return "NONE";
    case f2db::DegradationLevel::kStaleModel: return "STALE_MODEL";
    case f2db::DegradationLevel::kDerivedFallback: return "DERIVED_FALLBACK";
    case f2db::DegradationLevel::kNaiveFallback: return "NAIVE_FALLBACK";
    case f2db::DegradationLevel::kUnavailable: return "UNAVAILABLE";
  }
  return "?";
}

void PrintResponse(const f2db::Result<f2db::WireResponse>& response) {
  if (!response.ok()) {
    std::printf("transport error: %s\n",
                response.status().ToString().c_str());
    return;
  }
  const f2db::WireResponse& r = response.value();
  if (r.status != f2db::StatusCode::kOk) {
    std::printf("[%s] %s\n", f2db::StatusCodeName(r.status), r.body.c_str());
    return;
  }
  if (r.degradation != f2db::DegradationLevel::kNone) {
    std::printf("[degraded: %s]\n", DegradationName(r.degradation));
  }
  std::printf("%s", r.body.c_str());
  if (!r.body.empty() && r.body.back() != '\n') std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = argc > 1 ? argv[1] : "127.0.0.1";
  const std::uint16_t port =
      argc > 2 ? static_cast<std::uint16_t>(std::atoi(argv[2])) : 2113;

  auto client = f2db::F2dbClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u — \\ping \\stats \\quit\n", host, port);

  std::string line;
  for (;;) {
    std::printf("f2db> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\ping") {
      PrintResponse(client.value().Ping());
    } else if (line == "\\stats") {
      PrintResponse(client.value().Stats());
    } else if (line.rfind("INSERT", 0) == 0 || line.rfind("insert", 0) == 0) {
      PrintResponse(client.value().Insert(line));
    } else {
      PrintResponse(client.value().Query(line));
    }
  }
  return 0;
}
