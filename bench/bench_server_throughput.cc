// Networked serving-layer throughput and tail latency over loopback TCP.
//
// Boots the Tourism demo cube behind an in-process F2dbServer (real epoll
// reactors, real sockets) and drives it with 1, 8, and 64 persistent
// client connections, each issuing the same GROUP BY time forecast query
// through the blocking client library. Reports aggregate QPS plus p50 and
// p99 request latency per connection count — the serving-path numbers the
// engine-level bench_concurrent_queries deliberately excludes (framing,
// syscalls, admission control, response rendering).
//
// The sweep runs the cross product of --reactors and --shards: each
// (R, M) combination boots a fresh ShardedEngine (M hash partitions of
// the cube, each an independent F2dbEngine) behind a server with R
// reactor threads, so one baseline file captures both the single-reactor
// before point and the multi-reactor/multi-shard after points. Every
// combination loads the same shardable configuration (one model per base
// cell plus covering schemes) so engine work is identical across the
// sweep and differences are attributable to the serving topology.
//
// Expected shape: p50 in the hundreds of microseconds at 1 connection;
// QPS grows with connections until the CPUs saturate, and p99 then grows
// with queueing delay while shed_requests stays 0 (the admission limit is
// set above the offered concurrency). Multi-reactor scaling requires
// multiple hardware threads — on a single-CPU host every topology shares
// one core and extra reactors only add scheduling overhead, which is why
// the baseline records hardware_concurrency alongside each run.
//
// Usage: bench_server_throughput [--reactors LIST] [--shards LIST]
//                                [--seconds S] [json_output_path]
//   LIST is comma-separated, e.g. --reactors 1,2,4. Defaults to the
//   deduplicated {1, hardware_concurrency} for both axes. With a path
//   argument, also writes the table as a JSON baseline (see
//   BENCH_server.json at the repo root).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/sharded_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace f2db::bench {
namespace {

constexpr char kQueryText[] =
    "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '1'";

struct ServerPoint {
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
};

/// One (reactors, shards) combination of the sweep.
struct SweepRun {
  std::size_t reactors = 1;
  std::size_t shards = 1;
  std::size_t requests_shed = 0;
  std::vector<ServerPoint> points;
};

/// std::thread::hardware_concurrency may return 0 ("not computable");
/// fall back to the number of online processors before giving up at 1.
unsigned DetectHardwareConcurrency() {
  unsigned count = std::thread::hardware_concurrency();
  if (count == 0) {
    const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
    if (online > 0) count = static_cast<unsigned>(online);
  }
  return count == 0 ? 1u : count;
}

double Percentile(std::vector<double>& sorted_micros, double q) {
  if (sorted_micros.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_micros.size() - 1));
  return sorted_micros[rank];
}

ServerPoint RunPoint(const F2dbServer& server, std::size_t connections,
                     double seconds_per_point) {
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> errors{0};
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);

  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto client = F2dbClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const auto sent = std::chrono::steady_clock::now();
        auto response = client.value().Query(kQueryText);
        const auto received = std::chrono::steady_clock::now();
        if (!response.ok() ||
            response.value().status != StatusCode::kOk) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(received - sent)
                .count());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds_per_point));
  stop = true;
  for (auto& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> merged;
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end());

  ServerPoint point;
  point.connections = connections;
  point.requests = merged.size();
  point.errors = errors.load();
  point.seconds = seconds;
  point.qps = seconds > 0 ? static_cast<double>(merged.size()) / seconds : 0;
  point.p50_micros = Percentile(merged, 0.50);
  point.p99_micros = Percentile(merged, 0.99);
  return point;
}

void WriteJsonBaseline(const char* path, const std::vector<SweepRun>& runs,
                       double seconds_per_point) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("# could not write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_server_throughput\",\n");
  std::fprintf(out, "  \"query\": \"%s\",\n", kQueryText);
  std::fprintf(out, "  \"seconds_per_point\": %.1f,\n", seconds_per_point);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               DetectHardwareConcurrency());
  std::fprintf(out,
               "  \"note\": \"reactors/shards sweep; every run loads the "
               "same shardable configuration. Multi-reactor QPS gains "
               "require hardware_concurrency > 1 — on a single-CPU host "
               "all topologies share one core.\",\n");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const SweepRun& run = runs[r];
    std::fprintf(out,
                 "    {\"reactors\": %zu, \"shards\": %zu, "
                 "\"requests_shed\": %zu, \"points\": [\n",
                 run.reactors, run.shards, run.requests_shed);
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      const ServerPoint& p = run.points[i];
      std::fprintf(out,
                   "      {\"connections\": %zu, \"requests\": %zu, "
                   "\"errors\": %zu, \"qps\": %.0f, \"p50_micros\": %.1f, "
                   "\"p99_micros\": %.1f}%s\n",
                   p.connections, p.requests, p.errors, p.qps, p.p50_micros,
                   p.p99_micros, i + 1 < run.points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", r + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# baseline written to %s\n", path);
}

/// Parses "1,2,4" into {1, 2, 4}; returns false on anything non-numeric.
bool ParseAxis(const char* text, std::vector<std::size_t>* axis) {
  axis->clear();
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p != '\0' && *p != ',') {
      token.push_back(*p);
      continue;
    }
    if (token.empty()) return false;
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value == 0) return false;
    axis->push_back(static_cast<std::size_t>(value));
    token.clear();
    if (*p == '\0') break;
  }
  return !axis->empty();
}

}  // namespace
}  // namespace f2db::bench

int main(int argc, char** argv) {
  using namespace f2db::bench;

  const unsigned hardware = DetectHardwareConcurrency();
  std::vector<std::size_t> reactor_axis{1};
  std::vector<std::size_t> shard_axis{1};
  if (hardware > 1) {
    reactor_axis.push_back(hardware);
    shard_axis.push_back(hardware);
  }
  double seconds_per_point = 2.0;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--reactors") == 0 && has_value) {
      if (!ParseAxis(argv[++i], &reactor_axis)) {
        std::printf("bad --reactors list\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && has_value) {
      if (!ParseAxis(argv[++i], &shard_axis)) {
        std::printf("bad --shards list\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seconds") == 0 && has_value) {
      seconds_per_point = std::atof(argv[++i]);
      if (seconds_per_point <= 0) {
        std::printf("bad --seconds value\n");
        return 2;
      }
    } else {
      json_path = argv[i];
    }
  }

  PrintHeader("server throughput", "serving layer, not in paper",
              "reactors,shards,connections,requests,errors,seconds,qps,"
              "p50_micros,p99_micros");

  auto data = f2db::MakeTourism();
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  const f2db::TimeSeriesGraph& graph = data.value().graph;
  auto config = f2db::BuildShardableConfiguration(
      graph,
      f2db::ModelSpec::TripleExponentialSmoothing(data.value().season), 0.8);
  if (!config.ok()) {
    std::printf("configuration failed: %s\n",
                config.status().ToString().c_str());
    return 1;
  }

  std::printf("# hardware_concurrency=%u reactors={", hardware);
  for (std::size_t i = 0; i < reactor_axis.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", reactor_axis[i]);
  }
  std::printf("} shards={");
  for (std::size_t i = 0; i < shard_axis.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", shard_axis[i]);
  }
  std::printf("}\n");

  std::vector<SweepRun> runs;
  for (const std::size_t shards : shard_axis) {
    for (const std::size_t reactors : reactor_axis) {
      f2db::ShardedEngineOptions engine_options;
      engine_options.num_shards = shards;
      auto engine = f2db::ShardedEngine::Open(graph, engine_options);
      if (!engine.ok()) {
        std::printf("engine open failed: %s\n",
                    engine.status().ToString().c_str());
        return 1;
      }
      if (!engine.value()->LoadConfiguration(config.value(), 0.8).ok()) {
        std::printf("engine load failed\n");
        return 1;
      }

      f2db::ServerOptions options;
      options.reactor_threads = reactors;
      options.worker_threads = 4;
      options.admission_queue_limit = 256;  // above the offered concurrency
      f2db::F2dbServer server(*engine.value(), options);
      const f2db::Status started = server.Start();
      if (!started.ok()) {
        std::printf("server start failed: %s\n", started.ToString().c_str());
        return 1;
      }

      SweepRun run;
      run.reactors = reactors;
      run.shards = shards;
      for (const std::size_t connections : {1u, 8u, 64u}) {
        const ServerPoint point =
            RunPoint(server, connections, seconds_per_point);
        run.points.push_back(point);
        std::printf("%zu,%zu,%zu,%zu,%zu,%.3f,%.0f,%.1f,%.1f\n", reactors,
                    shards, point.connections, point.requests, point.errors,
                    point.seconds, point.qps, point.p50_micros,
                    point.p99_micros);
      }
      const f2db::ServerStats stats = server.stats();
      run.requests_shed = stats.requests_shed;
      std::printf("# reactors=%zu shards=%zu shed=%zu protocol_errors=%zu "
                  "accepted=%zu\n",
                  reactors, shards, stats.requests_shed,
                  stats.protocol_errors, stats.connections_accepted);
      server.Shutdown();
      runs.push_back(std::move(run));
    }
  }
  if (json_path != nullptr) {
    WriteJsonBaseline(json_path, runs, seconds_per_point);
  }
  return 0;
}
