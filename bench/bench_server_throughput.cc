// Networked serving-layer throughput and tail latency over loopback TCP.
//
// Boots the Tourism demo cube behind an in-process F2dbServer (real epoll
// event loop, real sockets) and drives it with 1, 8, and 64 persistent
// client connections, each issuing the same GROUP BY time forecast query
// through the blocking client library. Reports aggregate QPS plus p50 and
// p99 request latency per connection count — the serving-path numbers the
// engine-level bench_concurrent_queries deliberately excludes (framing,
// syscalls, admission control, response rendering).
//
// Expected shape: p50 in the hundreds of microseconds at 1 connection;
// QPS grows with connections until the worker pool saturates, and p99
// then grows with queueing delay while shed_requests stays 0 (the
// admission limit is set above the offered concurrency).
//
// Usage: bench_server_throughput [json_output_path]
//   With a path argument, also writes the table as a JSON baseline
//   (see BENCH_server.json at the repo root).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace f2db::bench {
namespace {

constexpr double kSecondsPerPoint = 2.0;
constexpr char kQueryText[] =
    "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '1'";

struct ServerPoint {
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
};

double Percentile(std::vector<double>& sorted_micros, double q) {
  if (sorted_micros.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_micros.size() - 1));
  return sorted_micros[rank];
}

ServerPoint RunPoint(const F2dbServer& server, std::size_t connections) {
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> errors{0};
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);

  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto client = F2dbClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const auto sent = std::chrono::steady_clock::now();
        auto response = client.value().Query(kQueryText);
        const auto received = std::chrono::steady_clock::now();
        if (!response.ok() ||
            response.value().status != StatusCode::kOk) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(received - sent)
                .count());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerPoint));
  stop = true;
  for (auto& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> merged;
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end());

  ServerPoint point;
  point.connections = connections;
  point.requests = merged.size();
  point.errors = errors.load();
  point.seconds = seconds;
  point.qps = seconds > 0 ? static_cast<double>(merged.size()) / seconds : 0;
  point.p50_micros = Percentile(merged, 0.50);
  point.p99_micros = Percentile(merged, 0.99);
  return point;
}

void WriteJsonBaseline(const char* path,
                       const std::vector<ServerPoint>& points,
                       const ServerStats& stats) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("# could not write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_server_throughput\",\n");
  std::fprintf(out, "  \"query\": \"%s\",\n", kQueryText);
  std::fprintf(out, "  \"seconds_per_point\": %.1f,\n", kSecondsPerPoint);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"requests_shed\": %zu,\n", stats.requests_shed);
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ServerPoint& p = points[i];
    std::fprintf(out,
                 "    {\"connections\": %zu, \"requests\": %zu, "
                 "\"errors\": %zu, \"qps\": %.0f, \"p50_micros\": %.1f, "
                 "\"p99_micros\": %.1f}%s\n",
                 p.connections, p.requests, p.errors, p.qps, p.p50_micros,
                 p.p99_micros, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# baseline written to %s\n", path);
}

}  // namespace
}  // namespace f2db::bench

int main(int argc, char** argv) {
  using namespace f2db::bench;
  PrintHeader("server throughput", "serving layer, not in paper",
              "connections,requests,errors,seconds,qps,p50_micros,p99_micros");

  auto data = f2db::MakeTourism();
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  f2db::ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  f2db::ModelFactory factory(f2db::ModelSpec::TripleExponentialSmoothing(
      data.value().season));
  f2db::AdvisorBuilder advisor(BenchAdvisorOptions());
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::printf("advisor failed: %s\n", built.status().ToString().c_str());
    return 1;
  }

  auto engine_data = f2db::MakeTourism();
  f2db::F2dbEngine engine(std::move(engine_data.value().graph));
  if (!engine.LoadConfiguration(built.value().configuration, evaluator)
           .ok()) {
    std::printf("engine load failed\n");
    return 1;
  }

  f2db::ServerOptions options;
  options.worker_threads = 4;
  options.admission_queue_limit = 256;  // above the offered concurrency
  f2db::F2dbServer server(engine, options);
  const f2db::Status started = server.Start();
  if (!started.ok()) {
    std::printf("server start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("# hardware_concurrency=%u port=%u workers=%zu\n",
              std::thread::hardware_concurrency(), server.port(),
              options.worker_threads);
  std::vector<ServerPoint> points;
  for (const std::size_t connections : {1u, 8u, 64u}) {
    const ServerPoint point = RunPoint(server, connections);
    points.push_back(point);
    std::printf("%zu,%zu,%zu,%.3f,%.0f,%.1f,%.1f\n", point.connections,
                point.requests, point.errors, point.seconds, point.qps,
                point.p50_micros, point.p99_micros);
  }
  const f2db::ServerStats stats = server.stats();
  std::printf("# shed=%zu protocol_errors=%zu accepted=%zu\n",
              stats.requests_shed, stats.protocol_errors,
              stats.connections_accepted);
  if (argc > 1) WriteJsonBaseline(argv[1], points, stats);
  server.Shutdown();
  return 0;
}
