// Multi-client forecast query throughput under concurrent maintenance.
//
// The snapshot-isolated engine core lets any number of query threads run
// lock-free against the current published snapshot while one writer streams
// InsertFact batches. This bench measures aggregate query throughput for
// 1, 2, 4, and 8 reader threads, each point with and without a concurrent
// writer, and reports the scaling factor relative to one reader.
//
// Expected shape: on a machine with >= 8 cores, throughput at 8 readers is
// >= 3x the single-reader throughput, and the concurrent writer shifts the
// curve down only marginally (readers never block on maintenance). On
// fewer cores the curve saturates at the core count — the bench prints
// the detected hardware concurrency so runs are interpretable.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/engine.h"

namespace f2db::bench {
namespace {

constexpr std::size_t kNumBase = 200;
constexpr double kSecondsPerPoint = 1.0;

struct ThroughputPoint {
  std::size_t readers = 0;
  bool with_writer = false;
  std::size_t queries = 0;
  std::size_t inserts = 0;
  double seconds = 0.0;
  double qps = 0.0;
};

/// Runs `readers` query threads (plus an optional insert stream) for a
/// fixed wall-clock budget against a freshly loaded engine.
ThroughputPoint RunPoint(const ModelConfiguration& config,
                         const ConfigurationEvaluator& evaluator,
                         std::size_t readers, bool with_writer) {
  auto data = MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
  EngineOptions options;
  options.reestimate_after_updates = 6;
  F2dbEngine engine(std::move(data.value().graph), options);
  if (!engine.LoadConfiguration(config, evaluator).ok()) return {};

  const std::size_t num_nodes = engine.graph().num_nodes();
  const std::vector<NodeId> base_nodes = engine.graph().base_nodes();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> total_queries{0};

  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      Rng rng(7);
      while (!stop.load(std::memory_order_relaxed)) {
        const SnapshotPtr snap = engine.snapshot();
        const std::int64_t t =
            snap->graph->series(base_nodes[0]).end_time();
        for (NodeId base : base_nodes) {
          const TimeSeries& series = snap->graph->series(base);
          const double next =
              series[series.size() - 1] * (1.0 + rng.Gaussian(0.0, 0.02));
          (void)engine.InsertFact(base, t, next);
          if (stop.load(std::memory_order_relaxed)) break;
        }
      }
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(readers);
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < readers; ++r) {
    clients.emplace_back([&, r] {
      Rng rng(100 + r);
      std::size_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId node = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<std::int64_t>(num_nodes) - 1));
        if (engine.ForecastNode(node, 1).ok()) ++local;
      }
      total_queries.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerPoint));
  stop = true;
  for (auto& t : clients) t.join();
  if (writer.joinable()) writer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  ThroughputPoint point;
  point.readers = readers;
  point.with_writer = with_writer;
  point.queries = total_queries.load();
  point.inserts = engine.stats().inserts;
  point.seconds = seconds;
  point.qps = seconds > 0 ? static_cast<double>(point.queries) / seconds : 0;
  return point;
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db::bench;
  PrintHeader("concurrent query throughput", "snapshot-isolated engine",
              "readers,writer,queries,inserts,seconds,qps,scaling_vs_1");

  auto data = f2db::MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  f2db::ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  f2db::ModelFactory factory(
      f2db::ModelSpec::TripleExponentialSmoothing(12));
  f2db::AdvisorOptions options = BenchAdvisorOptions();
  f2db::AdvisorBuilder advisor(options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::printf("advisor failed: %s\n", built.status().ToString().c_str());
    return 1;
  }

  std::printf("# hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());
  for (const bool with_writer : {false, true}) {
    double base_qps = 0.0;
    for (const std::size_t readers : {1u, 2u, 4u, 8u}) {
      const ThroughputPoint point = RunPoint(
          built.value().configuration, evaluator, readers, with_writer);
      if (readers == 1) base_qps = point.qps;
      const double scaling = base_qps > 0 ? point.qps / base_qps : 0.0;
      std::printf("%zu,%s,%zu,%zu,%.3f,%.0f,%.2f\n", point.readers,
                  point.with_writer ? "streaming" : "idle", point.queries,
                  point.inserts, point.seconds, point.qps, scaling);
    }
  }
  return 0;
}
