// Durability cost model (DESIGN.md section 10): what does crash safety buy
// and what does it charge?
//
// Part 1 — insert throughput by fsync policy. The WAL sits on the insert
// path, so the fsync policy is the knob that trades durability window for
// ingest rate: kNone defers to the OS, kBatch group-commits every
// wal_batch_records appends, kAlways syncs every record. An in-memory
// engine (no WAL at all) anchors the baseline.
//
// Part 2 — recovery time as a function of WAL length. Recovery replays the
// un-checkpointed WAL tail through the normal insert path, so restart
// latency grows with the tail; this is the cost a checkpoint cadence is
// chosen against.
//
// Results are summarized in BENCH_wal.json at the repo root.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "engine/engine.h"

namespace f2db::bench {
namespace {

/// Fresh scratch directory under /tmp; recreated per run so no state leaks
/// between policies.
std::string FreshDir() {
  char tmpl[] = "/tmp/f2db_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cleanup failed for %s\n", dir.c_str());
  }
}

TimeSeriesGraph BenchGraph() {
  auto data = MakeGenX(/*num_base=*/32, /*seed=*/7, /*length=*/60);
  if (!data.ok()) {
    std::fprintf(stderr, "MakeGenX: %s\n", data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data.value().graph);
}

/// Inserts `rounds` full periods (one value per base series each) and
/// returns the wall seconds spent inside InsertFact.
double RunInserts(F2dbEngine& engine, std::size_t rounds) {
  const std::vector<NodeId> bases = engine.graph().base_nodes();
  StopWatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::int64_t t =
        engine.snapshot()->graph->series(bases[0]).end_time();
    for (std::size_t i = 0; i < bases.size(); ++i) {
      const double value = 100.0 + static_cast<double>((r * 31 + i) % 17);
      const Status inserted = engine.InsertFact(bases[i], t, value);
      if (!inserted.ok()) {
        std::fprintf(stderr, "insert: %s\n", inserted.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return watch.ElapsedSeconds();
}

struct PolicyRow {
  std::string label;
  std::size_t inserts = 0;
  double seconds = 0.0;
  std::size_t wal_bytes = 0;
};

PolicyRow BenchPolicy(const std::string& label, FsyncPolicy policy,
                      std::size_t rounds) {
  const std::string dir = FreshDir();
  EngineOptions options;
  options.data_dir = dir;
  options.fsync_policy = policy;
  auto engine = F2dbEngine::Open(BenchGraph(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "open: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  PolicyRow row;
  row.label = label;
  row.seconds = RunInserts(*engine.value(), rounds);
  row.inserts = rounds * engine.value()->graph().base_nodes().size();
  row.wal_bytes = engine.value()->stats().wal_bytes;
  engine.value().reset();
  RemoveTree(dir);
  return row;
}

PolicyRow BenchInMemory(std::size_t rounds) {
  F2dbEngine engine(BenchGraph());
  PolicyRow row;
  row.label = "in-memory";
  row.seconds = RunInserts(engine, rounds);
  row.inserts = rounds * engine.graph().base_nodes().size();
  return row;
}

struct RecoveryRow {
  std::size_t wal_records = 0;
  double recovery_ms = 0.0;
};

RecoveryRow BenchRecovery(std::size_t rounds) {
  const std::string dir = FreshDir();
  EngineOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kNone;
  {
    auto engine = F2dbEngine::Open(BenchGraph(), options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open: %s\n", engine.status().ToString().c_str());
      std::exit(1);
    }
    RunInserts(*engine.value(), rounds);
    // Destruct WITHOUT a checkpoint: the whole run stays in the WAL tail.
  }
  auto reopened = F2dbEngine::Open(BenchGraph(), options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen: %s\n",
                 reopened.status().ToString().c_str());
    std::exit(1);
  }
  RecoveryRow row;
  const EngineStats stats = reopened.value()->stats();
  row.wal_records = stats.wal_records_replayed;
  row.recovery_ms = stats.recovery_duration_ms;
  reopened.value().reset();
  RemoveTree(dir);
  return row;
}

int Main() {
  const std::size_t rounds = 2000;  // x32 base series = 64k inserts

  PrintHeader("WAL insert throughput by fsync policy", "section V / robustness",
              "policy,inserts,seconds,inserts_per_sec,wal_mib");
  std::vector<PolicyRow> rows;
  rows.push_back(BenchInMemory(rounds));
  rows.push_back(BenchPolicy("fsync=none", FsyncPolicy::kNone, rounds));
  rows.push_back(BenchPolicy("fsync=batch", FsyncPolicy::kBatch, rounds));
  rows.push_back(BenchPolicy("fsync=always", FsyncPolicy::kAlways, rounds));
  for (const PolicyRow& row : rows) {
    std::printf("%s,%zu,%.3f,%.0f,%.2f\n", row.label.c_str(), row.inserts,
                row.seconds,
                static_cast<double>(row.inserts) / row.seconds,
                static_cast<double>(row.wal_bytes) / (1024.0 * 1024.0));
  }

  PrintHeader("Recovery time vs WAL length", "section V / robustness",
              "wal_records,recovery_ms,records_per_ms");
  for (std::size_t r : {250u, 1000u, 4000u, 16000u}) {
    const RecoveryRow row = BenchRecovery(r);
    std::printf("%zu,%.2f,%.0f\n", row.wal_records, row.recovery_ms,
                static_cast<double>(row.wal_records) / row.recovery_ms);
  }
  return 0;
}

}  // namespace
}  // namespace f2db::bench

int main() { return f2db::bench::Main(); }
