// Model zoo: rolling-origin accuracy of every forecast-model family on
// four canonical synthetic patterns (level, trend, seasonal, SARIMA).
// Complements the paper's single-family evaluation ("triple exponential
// smoothing worked best in most cases") with the evidence for this library:
// which family wins where, and by how much.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/sarima_generator.h"
#include "ts/backtest.h"

namespace f2db::bench {
namespace {

TimeSeries MakePattern(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 120;
  std::vector<double> out(n);
  if (name == "level") {
    for (std::size_t t = 0; t < n; ++t) {
      out[t] = 100.0 + rng.Gaussian(0.0, 3.0);
    }
  } else if (name == "trend") {
    for (std::size_t t = 0; t < n; ++t) {
      out[t] = 50.0 + 1.5 * static_cast<double>(t) + rng.Gaussian(0.0, 2.0);
    }
  } else if (name == "seasonal") {
    for (std::size_t t = 0; t < n; ++t) {
      out[t] = 100.0 + 0.4 * static_cast<double>(t) +
               20.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0) +
               rng.Gaussian(0.0, 2.0);
    }
  } else {  // sarima
    SarimaProcess process;
    process.order.p = 1;
    process.order.sd = 1;
    process.order.season = 12;
    process.phi = {0.5};
    process.noise_stddev = 1.0;
    process.level_offset = 100.0;
    return SimulateSarima(process, n, rng);
  }
  return TimeSeries(out);
}

void RunPattern(const std::string& pattern) {
  const TimeSeries series = MakePattern(pattern, 7);
  const ModelType families[] = {
      ModelType::kMean,           ModelType::kNaive,
      ModelType::kSeasonalNaive,  ModelType::kDrift,
      ModelType::kSes,            ModelType::kHolt,
      ModelType::kHoltWintersAdd, ModelType::kHoltWintersMul,
      ModelType::kTheta,          ModelType::kArima,
  };
  for (ModelType type : families) {
    ModelSpec spec;
    spec.type = type;
    spec.period = 12;
    if (type == ModelType::kArima) {
      spec.arima = ArimaOrder{1, 0, 1, 0, 1, 1, 12};
    }
    ModelFactory factory(spec);
    BacktestOptions options;
    options.min_train = 60;
    options.horizon = 6;
    options.stride = 3;
    auto result = RollingOriginBacktest(series, factory, options);
    if (!result.ok()) {
      std::printf("%s,%s,skipped\n", pattern.c_str(), ModelTypeName(type));
      continue;
    }
    std::printf("%s,%s,%.4f,%.3f,%zu\n", pattern.c_str(), ModelTypeName(type),
                result.value().smape, result.value().rmse,
                result.value().origins);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db::bench;
  PrintHeader("model zoo", "library evidence (beyond the paper)",
              "pattern,model,smape,rmse,origins");
  for (const char* pattern : {"level", "trend", "seasonal", "sarima"}) {
    RunPattern(pattern);
  }
  return 0;
}
