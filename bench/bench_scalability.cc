// E8 — Figure 9(a): Scalability of configuration creation.
//
// Uses the synthetic GenX data sets and varies the number of base time
// series, measuring the total time to create a configuration with each
// approach. Expected shape (paper): direct and bottom-up grow linearly
// (bottom-up cheaper), top-down is constant, greedy grows super-linearly,
// combine explodes (its reconciliation solves a dense system over the
// base dimension; it is skipped beyond a size limit, as the paper skipped
// it for Gen10k), and the advisor stays below everything except top-down.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunSize(std::size_t num_base) {
  auto data = MakeGenX(num_base, /*seed=*/4, /*length=*/48);
  if (!data.ok()) {
    std::printf("gen%zu,skipped,%s\n", num_base, data.status().ToString().c_str());
    return;
  }
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));

  DirectBuilder direct;
  BottomUpBuilder bottom_up;
  TopDownBuilder top_down;
  GreedyBuilder greedy;
  CombineBuilder combine(/*max_base_series=*/2000);
  AdvisorOptions advisor_options = BenchAdvisorOptions();
  advisor_options.stop.max_iterations = 120;
  AdvisorBuilder advisor(advisor_options);

  for (ConfigurationBuilder* builder :
       std::vector<ConfigurationBuilder*>{&direct, &bottom_up, &top_down,
                                          &combine, &greedy, &advisor}) {
    const ApproachRow row = RunBuilder(*builder, evaluator, factory);
    if (!row.ok) {
      std::printf("%zu,%s,skipped\n", num_base, row.approach.c_str());
      continue;
    }
    std::printf("%zu,%s,%.3f,%.4f,%zu\n", num_base, row.approach.c_str(),
                row.build_seconds, row.error, row.num_models);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db::bench;
  PrintHeader("E8 scalability", "Figure 9(a)",
              "num_base_series,approach,build_seconds,error,num_models");
  for (const std::size_t size : {1000u, 5000u, 10000u, 20000u}) {
    RunSize(size);
  }
  // The paper plots up to 100k base series; the largest sizes take minutes
  // (Greedy grows super-linearly), so they are opt-in:
  //   F2DB_BENCH_LARGE=1 build/bench/bench_scalability
  if (std::getenv("F2DB_BENCH_LARGE") != nullptr) {
    RunSize(50000);
    RunSize(100000);
  }
  return 0;
}
