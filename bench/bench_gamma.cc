// E4/E5 — Figures 8(c) and 8(d): Influence of gamma (candidate selection)
// under varying model creation time.
//
// The paper "artificially var[ies] the time that is required to create a
// single forecast model" on the Sales data set and measures (c) the total
// runtime of each approach and (d) the final configuration error of the
// advisor. Direct/Greedy/Top-Down grow linearly with the per-model delay;
// the advisor's control phase shifts work into the (cheap) candidate
// selection phase, so its runtime grows far slower. Delays are scaled to
// milliseconds to keep the bench laptop-sized; the paper used seconds.

#include <cstdio>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunRuntimeSweep(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  const double delays_ms[] = {0.0, 2.0, 5.0, 10.0, 20.0, 40.0};
  for (const double delay_ms : delays_ms) {
    ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));
    factory.set_artificial_delay_seconds(delay_ms / 1000.0);

    DirectBuilder direct;
    TopDownBuilder top_down;
    GreedyBuilder greedy;
    AdvisorBuilder advisor(BenchAdvisorOptions());
    for (ConfigurationBuilder* builder :
         std::vector<ConfigurationBuilder*>{&direct, &top_down, &greedy,
                                            &advisor}) {
      const ApproachRow row = RunBuilder(*builder, evaluator, factory);
      std::printf("%s,%.0f,%s,%.3f,%zu\n", data.name.c_str(), delay_ms,
                  row.approach.c_str(), row.build_seconds, row.models_created);
    }
  }
}

void RunErrorSweep(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  const double delays_ms[] = {0.0, 5.0, 20.0, 40.0};
  for (const double delay_ms : delays_ms) {
    ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));
    factory.set_artificial_delay_seconds(delay_ms / 1000.0);
    AdvisorBuilder advisor(BenchAdvisorOptions());
    const ApproachRow row = RunBuilder(advisor, evaluator, factory);
    std::printf("%s,%.0f,%.4f,%zu\n", data.name.c_str(), delay_ms, row.error,
                row.num_models);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E4 gamma runtime", "Figure 8(c)",
              "dataset,model_delay_ms,approach,total_seconds,models_created");
  if (auto sales = MakeSales(); sales.ok()) RunRuntimeSweep(sales.value());

  PrintHeader("E5 gamma error", "Figure 8(d)",
              "dataset,model_delay_ms,advisor_error,num_models");
  if (auto sales = MakeSales(); sales.ok()) RunErrorSweep(sales.value());
  if (auto tourism = MakeTourism(); tourism.ok()) RunErrorSweep(tourism.value());
  if (auto energy = MakeEnergy(3, 504); energy.ok()) {
    RunErrorSweep(energy.value());
  }
  return 0;
}
