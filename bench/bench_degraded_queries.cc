// Query throughput and latency under injected re-estimation failures.
//
// The graceful-degradation ladder must keep the query path fast when
// re-estimation fails: a failed refit serves the stale pre-invalidation
// model instead of erroring, and repeated failures quarantine the node so
// queries stop paying for doomed fit attempts. This bench streams inserts
// (continuously invalidating models) while reader threads query random
// nodes, and sweeps the engine.refit failpoint over 0%, 1%, and 10%
// failure probability.
//
// Expected shape: throughput at 10% injected failures stays within a small
// factor of the fault-free run (degraded answers are CHEAPER than refits —
// the ladder's stale rung skips the fit entirely), every query succeeds,
// and the degraded-row counters account for exactly the stale/derived/
// naive answers served.
//
// Any other bench can be run against a failure mix too:
//   F2DB_FAILPOINTS="engine.refit=prob:0.1" build/bench/<bench>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "engine/engine.h"

namespace f2db::bench {
namespace {

constexpr std::size_t kNumBase = 200;
constexpr std::size_t kReaders = 4;
constexpr double kSecondsPerPoint = 1.0;

struct DegradedPoint {
  double failure_probability = 0.0;
  std::size_t queries = 0;
  std::size_t errors = 0;
  double qps = 0.0;
  double mean_latency_micros = 0.0;
  std::size_t refit_failures = 0;
  std::size_t quarantines = 0;
  std::size_t degraded_stale = 0;
  std::size_t degraded_derived = 0;
  std::size_t degraded_naive = 0;
};

DegradedPoint RunPoint(const ModelConfiguration& config,
                       const ConfigurationEvaluator& evaluator,
                       double failure_probability) {
  auto data = MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
  EngineOptions options;
  options.reestimate_after_updates = 4;  // keep refits coming
  options.quarantine_after_refit_failures = 3;
  F2dbEngine engine(std::move(data.value().graph), options);
  if (!engine.LoadConfiguration(config, evaluator).ok()) return {};

  if (failure_probability > 0.0) {
    failpoint::Enable(kFailpointEngineRefit,
                      failpoint::Policy::WithProbability(failure_probability,
                                                         /*seed=*/2013));
  } else {
    failpoint::DisableAll();
  }

  const std::size_t num_nodes = engine.graph().num_nodes();
  const std::vector<NodeId> base_nodes = engine.graph().base_nodes();
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> total_queries{0};
  std::atomic<std::size_t> total_errors{0};

  std::thread writer([&] {
    Rng rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const SnapshotPtr snap = engine.snapshot();
      const std::int64_t t = snap->graph->series(base_nodes[0]).end_time();
      for (NodeId base : base_nodes) {
        const TimeSeries& series = snap->graph->series(base);
        const double next =
            series[series.size() - 1] * (1.0 + rng.Gaussian(0.0, 0.02));
        (void)engine.InsertFact(base, t, next);
        if (stop.load(std::memory_order_relaxed)) break;
      }
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kReaders);
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kReaders; ++r) {
    clients.emplace_back([&, r] {
      Rng rng(100 + r);
      std::size_t local = 0, local_errors = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId node = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<std::int64_t>(num_nodes) - 1));
        if (engine.ForecastNode(node, 1).ok()) {
          ++local;
        } else {
          ++local_errors;
        }
      }
      total_queries.fetch_add(local, std::memory_order_relaxed);
      total_errors.fetch_add(local_errors, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kSecondsPerPoint));
  stop = true;
  for (auto& t : clients) t.join();
  writer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  failpoint::DisableAll();

  const EngineStats stats = engine.stats();
  DegradedPoint point;
  point.failure_probability = failure_probability;
  point.queries = total_queries.load();
  point.errors = total_errors.load();
  point.qps =
      seconds > 0 ? static_cast<double>(point.queries) / seconds : 0.0;
  point.mean_latency_micros =
      stats.queries > 0 ? stats.total_query_seconds /
                              static_cast<double>(stats.queries) * 1e6
                        : 0.0;
  point.refit_failures = stats.refit_failures;
  point.quarantines = stats.quarantines;
  point.degraded_stale = stats.degraded_rows_stale;
  point.degraded_derived = stats.degraded_rows_derived;
  point.degraded_naive = stats.degraded_rows_naive;
  return point;
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db::bench;
  PrintHeader("query throughput under injected refit failures",
              "degradation ladder",
              "failure_pct,queries,errors,qps,mean_latency_us,"
              "refit_failures,quarantines,stale_rows,derived_rows,"
              "naive_rows");

  auto data = f2db::MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  f2db::ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  f2db::ModelFactory factory(
      f2db::ModelSpec::TripleExponentialSmoothing(12));
  f2db::AdvisorOptions options = BenchAdvisorOptions();
  f2db::AdvisorBuilder advisor(options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::printf("advisor failed: %s\n", built.status().ToString().c_str());
    return 1;
  }

  for (const double probability : {0.0, 0.01, 0.10}) {
    const DegradedPoint point =
        RunPoint(built.value().configuration, evaluator, probability);
    std::printf("%.0f,%zu,%zu,%.0f,%.1f,%zu,%zu,%zu,%zu,%zu\n",
                point.failure_probability * 100.0, point.queries,
                point.errors, point.qps, point.mean_latency_micros,
                point.refit_failures, point.quarantines,
                point.degraded_stale, point.degraded_derived,
                point.degraded_naive);
  }
  return 0;
}
