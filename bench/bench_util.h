// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints CSV-ish tables to stdout, one per reproduced
// figure, with a header line naming the experiment. Run them all with
//   for b in build/bench/*; do $b; done
//
// Fault injection: set F2DB_FAILPOINTS (same spec grammar as
// failpoint::EnableFromSpec, e.g. "engine.refit=prob:0.1") to run any bench
// against an injected failure mix — PrintHeader applies the variable and
// echoes the active spec so logs are self-describing.

#ifndef F2DB_BENCH_BENCH_UTIL_H_
#define F2DB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/advisor_builder.h"
#include "common/failpoint.h"
#include "baselines/bottom_up.h"
#include "baselines/builder.h"
#include "baselines/combine.h"
#include "baselines/direct.h"
#include "baselines/greedy.h"
#include "baselines/top_down.h"
#include "core/advisor.h"
#include "data/datasets.h"

namespace f2db::bench {

/// Accuracy + cost summary of one built configuration.
struct ApproachRow {
  std::string approach;
  double error = 1.0;
  std::size_t num_models = 0;
  double build_seconds = 0.0;
  std::size_t models_created = 0;
  bool ok = false;
  std::string note;
};

/// Runs one builder and summarizes the outcome.
inline ApproachRow RunBuilder(ConfigurationBuilder& builder,
                              const ConfigurationEvaluator& evaluator,
                              const ModelFactory& factory) {
  ApproachRow row;
  row.approach = builder.name();
  auto outcome = builder.Build(evaluator, factory);
  if (!outcome.ok()) {
    row.note = outcome.status().ToString();
    return row;
  }
  row.ok = true;
  row.error = outcome.value().configuration.MeanError();
  row.num_models = outcome.value().configuration.num_models();
  row.build_seconds = outcome.value().build_seconds;
  row.models_created = outcome.value().models_created;
  return row;
}

/// Default advisor options for benches: bounded iterations, fixed seed.
inline AdvisorOptions BenchAdvisorOptions() {
  AdvisorOptions options;
  options.seed = 2013;
  // Emulate the paper's 12-core batch size regardless of the host: eight
  // models are created and judged per iteration.
  options.models_per_iteration = 8;
  options.stop.max_iterations = 150;
  return options;
}

/// Prints a section header recognizable in combined bench logs. Also arms
/// any failpoints requested through F2DB_FAILPOINTS and echoes the spec.
inline void PrintHeader(const std::string& experiment,
                        const std::string& figure,
                        const std::string& columns) {
  const std::string failpoints = failpoint::InitFromEnv();
  std::printf("\n=== %s (paper %s) ===\n", experiment.c_str(),
              figure.c_str());
  if (!failpoints.empty()) {
    std::printf("# failpoints: %s\n", failpoints.c_str());
  }
  std::printf("%s\n", columns.c_str());
}

}  // namespace f2db::bench

#endif  // F2DB_BENCH_BENCH_UTIL_H_
