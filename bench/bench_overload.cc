// Overload behavior of the serving layer: goodput and tail latency at
// 1x / 2x / 4x of measured capacity, with and without the brownout rung.
//
// Boots the Tourism demo cube behind an in-process F2dbServer and first
// measures capacity: the closed-loop QPS a small connection pool sustains
// against a calm server. It then replays an open-loop-ish mixed workload
// (7 queries : 1 invalidating insert, every frame stamped with a wire
// deadline derived from the client timeout) at multiples of that capacity,
// once with brownout disabled and once with the brownout watermark below
// the admission limit. Each load point gets a fresh engine so the insert
// and refit history is identical across the sweep.
//
// Expected shape: at 1x both configurations answer nearly everything at
// full fidelity. Past capacity the no-brownout server spends its budget
// on inline re-estimation and sheds/expires the excess, while the
// brownout server converts that work into annotated stale-rung answers —
// higher goodput and a flatter p99 at the price of explicit degradation.
// Deadline expiries and admission sheds are losses, not goodput; the
// tables separate them so the trade is visible.
//
// The load generator is paced per thread but backed by blocking clients,
// so once a thread's pacing interval drops below the service time the
// thread degenerates to closed-loop — offered load saturates at the pool's
// maximum rather than queueing unboundedly. That is the standard bounded
// approximation of open-loop load without async clients; the multiplier
// column records the *target*, the offered column what was actually sent.
//
// Usage: bench_overload [--seconds S] [--multipliers LIST] [json_path]
//   LIST is comma-separated, e.g. --multipliers 1,2,4 (the default). With
//   a path argument, also writes the table as a JSON baseline (see
//   BENCH_overload.json at the repo root).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/sharded_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace f2db::bench {
namespace {

constexpr char kQueryText[] =
    "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '1'";
constexpr std::size_t kLoadThreads = 8;
constexpr double kClientTimeoutSeconds = 0.5;
/// One insert per this many requests dirties models so the brownout rung
/// has re-estimation work to skip.
constexpr int kInsertEvery = 8;

/// The engine only advances the cube once EVERY base cell has a value at
/// the frontier time, so the inserts must walk the full 4x8 Tourism base
/// layer before moving to the next quarter. A global sequence hands each
/// insert a unique (cell, time) slot; times are non-decreasing in the
/// sequence, so racing threads can never land behind the frontier.
std::atomic<long> g_insert_seq{0};

std::string NextInsertSql() {
  static const char* kPurposes[] = {"holiday", "business", "visiting",
                                    "other"};
  const long seq = g_insert_seq.fetch_add(1, std::memory_order_relaxed);
  const long cell = seq % 32;
  const long time = 32 + seq / 32;  // past the seeded 32 quarters
  return "INSERT INTO facts VALUES ('" + std::string(kPurposes[cell / 8]) +
         "', 'S" + std::to_string(cell % 8 + 1) + "', " +
         std::to_string(time) + ", 150.0)";
}

struct LoadPoint {
  double multiplier = 0.0;
  bool brownout = false;
  double offered_qps = 0.0;
  std::size_t sent = 0;
  std::size_t ok = 0;        // status kOk (goodput, any fidelity)
  std::size_t degraded = 0;  // subset of ok with a degradation annotation
  std::size_t shed = 0;      // kUnavailable from admission control
  std::size_t deadline_expired = 0;
  std::size_t errors = 0;  // transport failures + client-side timeouts
  double seconds = 0.0;
  double goodput_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t brownout_queries = 0;
  std::size_t brownout_episodes = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

std::unique_ptr<ShardedEngine> MakeEngine(const TimeSeriesGraph& graph,
                                          const ModelConfiguration& config) {
  ShardedEngineOptions options;
  options.num_shards = 1;
  options.engine.reestimate_after_updates = 2;  // inserts invalidate quickly
  auto engine = ShardedEngine::Open(graph, options);
  if (!engine.ok()) return nullptr;
  if (!engine.value()->LoadConfiguration(config, 0.8).ok()) return nullptr;
  return std::move(engine.value());
}

ServerOptions OverloadServerOptions(bool brownout) {
  ServerOptions options;
  options.reactor_threads = 1;
  options.worker_threads = 2;
  options.admission_queue_limit = 16;
  options.brownout_watermark = brownout ? 6 : 0;
  return options;
}

/// Closed-loop calibration: what the calm server sustains.
double MeasureCapacity(const F2dbServer& server, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      auto client = F2dbClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = client.value().Query(kQueryText);
        if (response.ok() && response.value().status == StatusCode::kOk) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop = true;
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return elapsed > 0 ? static_cast<double>(completed.load()) / elapsed : 0.0;
}

LoadPoint RunLoadPoint(const F2dbServer& server, double multiplier,
                       double offered_qps, bool brownout, double seconds) {
  struct ThreadTally {
    std::size_t sent = 0, ok = 0, degraded = 0, shed = 0, expired = 0,
                errors = 0;
    std::vector<double> ok_latencies_ms;
  };
  g_insert_seq.store(0);  // each load point starts on a fresh engine
  std::vector<ThreadTally> tallies(kLoadThreads);
  std::vector<std::thread> threads;
  const auto interval = std::chrono::duration<double>(
      static_cast<double>(kLoadThreads) / offered_qps);
  const auto begin = std::chrono::steady_clock::now();
  const auto end = begin + std::chrono::duration<double>(seconds);

  for (std::size_t t = 0; t < kLoadThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      ClientOptions options;
      options.request_timeout_seconds = kClientTimeoutSeconds;
      options.propagate_deadline = true;
      auto client = F2dbClient::Connect("127.0.0.1", server.port(), options);
      auto next = std::chrono::steady_clock::now();
      int sequence = 0;
      while (std::chrono::steady_clock::now() < end) {
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(interval);
        const auto now = std::chrono::steady_clock::now();
        if (next > now) {
          std::this_thread::sleep_until(next);
        } else {
          next = now;  // behind schedule: shed the pacing backlog
        }
        if (!client.ok()) {  // timeout poisons the stream; reconnect
          client =
              F2dbClient::Connect("127.0.0.1", server.port(), options);
          if (!client.ok()) {
            ++tally.sent;
            ++tally.errors;
            continue;
          }
        }
        ++tally.sent;
        ++sequence;
        const auto sent_at = std::chrono::steady_clock::now();
        Result<WireResponse> response = [&] {
          if (sequence % kInsertEvery == 0) {
            return client.value().Insert(NextInsertSql());
          }
          return client.value().Query(kQueryText);
        }();
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent_at)
                .count();
        if (!response.ok()) {
          ++tally.errors;
          client = Result<F2dbClient>(response.status());
          continue;
        }
        switch (response.value().status) {
          case StatusCode::kOk:
            ++tally.ok;
            if (response.value().degradation != DegradationLevel::kNone) {
              ++tally.degraded;
            }
            tally.ok_latencies_ms.push_back(latency_ms);
            break;
          case StatusCode::kDeadlineExceeded:
            ++tally.expired;
            break;
          case StatusCode::kUnavailable:
            ++tally.shed;
            break;
          default:
            ++tally.errors;
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  LoadPoint point;
  point.multiplier = multiplier;
  point.brownout = brownout;
  point.seconds = elapsed;
  std::vector<double> merged;
  for (const ThreadTally& tally : tallies) {
    point.sent += tally.sent;
    point.ok += tally.ok;
    point.degraded += tally.degraded;
    point.shed += tally.shed;
    point.deadline_expired += tally.expired;
    point.errors += tally.errors;
    merged.insert(merged.end(), tally.ok_latencies_ms.begin(),
                  tally.ok_latencies_ms.end());
  }
  point.offered_qps =
      elapsed > 0 ? static_cast<double>(point.sent) / elapsed : 0.0;
  point.goodput_qps =
      elapsed > 0 ? static_cast<double>(point.ok) / elapsed : 0.0;
  std::sort(merged.begin(), merged.end());
  point.p50_ms = Percentile(merged, 0.50);
  point.p99_ms = Percentile(merged, 0.99);
  return point;
}

void WriteJsonBaseline(const char* path, double capacity_qps,
                       const std::vector<LoadPoint>& points,
                       double seconds_per_point) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("# could not write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_overload\",\n");
  std::fprintf(out, "  \"query\": \"%s\",\n", kQueryText);
  std::fprintf(out, "  \"seconds_per_point\": %.1f,\n", seconds_per_point);
  std::fprintf(out, "  \"capacity_qps\": %.0f,\n", capacity_qps);
  std::fprintf(out,
               "  \"note\": \"goodput = kOk responses at any fidelity; "
               "degraded is the annotated subset. Brownout trades inline "
               "re-estimation for annotated stale answers once queue depth "
               "crosses the watermark; sheds and deadline expiries are "
               "honest losses, never silent ones.\",\n");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(out,
                 "    {\"multiplier\": %.0f, \"brownout\": %s, "
                 "\"offered_qps\": %.0f, \"sent\": %zu, \"ok\": %zu, "
                 "\"degraded\": %zu, \"shed\": %zu, "
                 "\"deadline_expired\": %zu, \"errors\": %zu, "
                 "\"goodput_qps\": %.0f, \"p50_ms\": %.2f, "
                 "\"p99_ms\": %.2f, \"brownout_queries\": %zu, "
                 "\"brownout_episodes\": %zu}%s\n",
                 p.multiplier, p.brownout ? "true" : "false", p.offered_qps,
                 p.sent, p.ok, p.degraded, p.shed, p.deadline_expired,
                 p.errors, p.goodput_qps, p.p50_ms, p.p99_ms,
                 p.brownout_queries, p.brownout_episodes,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# baseline written to %s\n", path);
}

/// Parses "1,2,4" into {1.0, 2.0, 4.0}; returns false on anything
/// non-positive or non-numeric.
bool ParseMultipliers(const char* text, std::vector<double>* axis) {
  axis->clear();
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p != '\0' && *p != ',') {
      token.push_back(*p);
      continue;
    }
    if (token.empty()) return false;
    char* endptr = nullptr;
    const double value = std::strtod(token.c_str(), &endptr);
    if (endptr == nullptr || *endptr != '\0' || value <= 0) return false;
    axis->push_back(value);
    token.clear();
    if (*p == '\0') break;
  }
  return !axis->empty();
}

}  // namespace
}  // namespace f2db::bench

int main(int argc, char** argv) {
  using namespace f2db::bench;

  double seconds_per_point = 2.0;
  std::vector<double> multipliers{1.0, 2.0, 4.0};
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--seconds") == 0 && has_value) {
      seconds_per_point = std::atof(argv[++i]);
      if (seconds_per_point <= 0) {
        std::printf("bad --seconds value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--multipliers") == 0 && has_value) {
      if (!ParseMultipliers(argv[++i], &multipliers)) {
        std::printf("bad --multipliers list\n");
        return 2;
      }
    } else {
      json_path = argv[i];
    }
  }

  PrintHeader("overload goodput", "serving layer, not in paper",
              "multiplier,brownout,offered_qps,sent,ok,degraded,shed,"
              "deadline_expired,errors,goodput_qps,p50_ms,p99_ms,"
              "brownout_queries");

  auto data = f2db::MakeTourism();
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  const f2db::TimeSeriesGraph& graph = data.value().graph;
  auto config = f2db::BuildShardableConfiguration(
      graph,
      f2db::ModelSpec::TripleExponentialSmoothing(data.value().season), 0.8);
  if (!config.ok()) {
    std::printf("configuration failed: %s\n",
                config.status().ToString().c_str());
    return 1;
  }

  // Calibrate capacity against a calm, brownout-free server.
  double capacity_qps = 0.0;
  {
    auto engine = MakeEngine(graph, config.value());
    if (engine == nullptr) {
      std::printf("engine load failed\n");
      return 1;
    }
    f2db::F2dbServer server(*engine, OverloadServerOptions(false));
    if (!server.Start().ok()) {
      std::printf("server start failed\n");
      return 1;
    }
    capacity_qps = MeasureCapacity(server, seconds_per_point);
    server.Shutdown();
  }
  if (capacity_qps <= 0) {
    std::printf("capacity calibration failed\n");
    return 1;
  }
  std::printf("# capacity_qps=%.0f (closed loop, 4 connections)\n",
              capacity_qps);

  std::vector<LoadPoint> points;
  for (const double multiplier : multipliers) {
    for (const bool brownout : {false, true}) {
      auto engine = MakeEngine(graph, config.value());
      if (engine == nullptr) {
        std::printf("engine load failed\n");
        return 1;
      }
      f2db::F2dbServer server(*engine, OverloadServerOptions(brownout));
      if (!server.Start().ok()) {
        std::printf("server start failed\n");
        return 1;
      }
      LoadPoint point =
          RunLoadPoint(server, multiplier, multiplier * capacity_qps,
                       brownout, seconds_per_point);
      const f2db::ServerStats stats = server.stats();
      point.brownout_queries = stats.brownout_queries;
      point.brownout_episodes = stats.brownout_episodes;
      server.Shutdown();
      std::printf("%.0f,%d,%.0f,%zu,%zu,%zu,%zu,%zu,%zu,%.0f,%.2f,%.2f,%zu\n",
                  point.multiplier, point.brownout ? 1 : 0, point.offered_qps,
                  point.sent, point.ok, point.degraded, point.shed,
                  point.deadline_expired, point.errors, point.goodput_qps,
                  point.p50_ms, point.p99_ms, point.brownout_queries);
      points.push_back(point);
    }
  }
  if (json_path != nullptr) {
    WriteJsonBaseline(json_path, capacity_qps, points, seconds_per_point);
  }
  return 0;
}
