// Maintenance ablation: how fast do frozen model parameters go stale?
//
// The paper's maintenance processor updates model state incrementally and
// delays parameter re-estimation (Section V). This bench quantifies the
// trade-off that design rests on: per-origin error of (a) refitting at
// every origin, (b) incremental state updates only, and (c) the engine's
// threshold strategy (re-estimate every R periods), on a series with a
// mid-stream regime change.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ts/accuracy.h"
#include "ts/backtest.h"

namespace f2db::bench {
namespace {

TimeSeries RegimeChangeSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double level = 100.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double drift = t > n / 2 ? 2.5 : 0.4;
    const double season =
        8.0 * std::sin(2.0 * 3.14159265358979 * static_cast<double>(t) / 12.0);
    level += drift + rng.Gaussian(0.0, 1.0);
    out[t] = level + season;
  }
  return TimeSeries(out);
}

// Threshold strategy: refit every `reestimate_every` origins, update state
// in between — the engine's behaviour with reestimate_after_updates = R.
Result<BacktestResult> ThresholdBacktest(const TimeSeries& series,
                                         const ModelFactory& factory,
                                         const BacktestOptions& options,
                                         std::size_t reestimate_every) {
  F2DB_ASSIGN_OR_RETURN(std::unique_ptr<ForecastModel> model,
                        factory.CreateAndFit(series.Head(options.min_train)));
  BacktestResult result;
  double abs_sum = 0.0, sq_sum = 0.0;
  std::size_t count = 0;
  std::size_t consumed = options.min_train;
  std::size_t since_fit = 0;
  for (std::size_t origin = options.min_train;
       origin + options.horizon <= series.size(); origin += options.stride) {
    while (consumed < origin) {
      model->Update(series[consumed]);
      ++consumed;
      ++since_fit;
    }
    if (since_fit >= reestimate_every) {
      F2DB_RETURN_IF_ERROR(model->Fit(series.Head(origin)));
      since_fit = 0;
    }
    const std::vector<double> forecast = model->Forecast(options.horizon);
    std::vector<double> actual(options.horizon);
    for (std::size_t h = 0; h < options.horizon; ++h) {
      actual[h] = series[origin + h];
    }
    result.per_origin_smape.push_back(Smape(actual, forecast));
    for (std::size_t h = 0; h < options.horizon; ++h) {
      const double err = actual[h] - forecast[h];
      abs_sum += std::abs(err);
      sq_sum += err * err;
      ++count;
    }
    ++result.origins;
  }
  double total = 0.0;
  for (double v : result.per_origin_smape) total += v;
  result.smape = result.origins ? total / result.origins : 1.0;
  result.mae = count ? abs_sum / count : 0.0;
  result.rmse = count ? std::sqrt(sq_sum / count) : 0.0;
  return result;
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("maintenance staleness", "Section V design trade-off",
              "strategy,smape,rmse,origins");

  const TimeSeries series = RegimeChangeSeries(160, 11);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
  BacktestOptions options;
  options.min_train = 60;
  options.horizon = 4;
  options.stride = 1;

  if (auto r = RollingOriginBacktest(series, factory, options); r.ok()) {
    std::printf("refit_every_origin,%.4f,%.3f,%zu\n", r.value().smape,
                r.value().rmse, r.value().origins);
  }
  for (const std::size_t every : {6u, 12u, 24u}) {
    auto r = ThresholdBacktest(series, factory, options, every);
    if (r.ok()) {
      std::printf("reestimate_every_%zu,%.4f,%.3f,%zu\n",
                  static_cast<std::size_t>(every), r.value().smape,
                  r.value().rmse, r.value().origins);
    }
  }
  if (auto r = IncrementalBacktest(series, factory, options); r.ok()) {
    std::printf("incremental_only,%.4f,%.3f,%zu\n", r.value().smape,
                r.value().rmse, r.value().origins);
  }
  return 0;
}
