// E10 — Ablations of the advisor's design choices (DESIGN.md section 4).
//
// (1) Indicator composition (Section III-B): historical-error term only,
//     similarity term only, and the combined default.
// (2) The multi-source scheme optimizer (Section IV-C2): off vs. on.
//
// Reported per variant: final configuration error and number of models.

#include <cstdio>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunIndicatorAblation(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));

  struct Variant {
    const char* name;
    double historical;
    double similarity;
  };
  const Variant variants[] = {
      {"historical_only", 1.0, 0.0},
      {"similarity_only", 0.0, 1.0},
      {"combined", 1.0, 0.5},
  };
  for (const Variant& variant : variants) {
    AdvisorOptions options = BenchAdvisorOptions();
    options.indicator.historical_weight = variant.historical;
    options.indicator.similarity_weight = variant.similarity;
    AdvisorBuilder advisor(options);
    const ApproachRow row = RunBuilder(advisor, evaluator, factory);
    std::printf("%s,indicator,%s,%.4f,%zu\n", data.name.c_str(), variant.name,
                row.error, row.num_models);
  }
}

void RunMultiSourceAblation(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));
  for (const std::size_t probes : {std::size_t{0}, std::size_t{16}}) {
    AdvisorOptions options = BenchAdvisorOptions();
    options.multi_source_probes_per_iteration = probes;
    AdvisorBuilder advisor(options);
    const ApproachRow row = RunBuilder(advisor, evaluator, factory);
    std::printf("%s,multi_source,%s,%.4f,%zu\n", data.name.c_str(),
                probes == 0 ? "off" : "on", row.error, row.num_models);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E10 ablations", "DESIGN.md section 4",
              "dataset,ablation,variant,error,num_models");
  if (auto tourism = MakeTourism(); tourism.ok()) {
    RunIndicatorAblation(tourism.value());
    RunMultiSourceAblation(tourism.value());
  }
  if (auto sales = MakeSales(); sales.ok()) {
    RunIndicatorAblation(sales.value());
    RunMultiSourceAblation(sales.value());
  }
  return 0;
}
