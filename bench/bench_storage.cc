// Storage engine cost model (DESIGN.md section 13): what do compressed
// sealed segments buy over keeping all history in the WAL?
//
// Part 1 — on-disk footprint. Compaction re-encodes closed history as
// delta-of-delta timestamps + Gorilla-XOR values; the WAL stores one
// fixed-size framed record per insert. Same records, both formats.
//
// Part 2 — recovery latency. An all-WAL recovery replays every insert
// through the full maintenance path (aggregates + model state per record);
// a compacted recovery bulk-loads the sealed chain and rebuilds each
// aggregate once, replaying only the unsealed tail. Both are measured on
// identical insert streams.
//
// Part 3 — retention. With a retention window, live segment bytes stay
// bounded no matter how much history has passed through the engine.
//
// Results are summarized in BENCH_storage.json at the repo root.
// Pass --quick for the CI smoke run (small rounds, same code paths).

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "engine/engine.h"

namespace f2db::bench {
namespace {

std::string FreshDir() {
  char tmpl[] = "/tmp/f2db_bench_storage_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cleanup failed for %s\n", dir.c_str());
  }
}

TimeSeriesGraph BenchGraph() {
  auto data = MakeGenX(/*num_base=*/32, /*seed=*/7, /*length=*/60);
  if (!data.ok()) {
    std::fprintf(stderr, "MakeGenX: %s\n", data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data.value().graph);
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Inserts `rounds` full periods (one value per base series each). The
/// values mimic a realistic measure stream: a level with a seasonal swing
/// and deterministic jitter, quantized to quarter units the way monetary
/// or count measures are (NOT constant — constants would flatter the XOR
/// compressor — and not full-mantissa noise, which no sales column has).
void RunInserts(F2dbEngine& engine, std::size_t rounds) {
  const std::vector<NodeId> bases = engine.graph().base_nodes();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::int64_t t =
        engine.snapshot()->graph->series(bases[0]).end_time();
    for (std::size_t i = 0; i < bases.size(); ++i) {
      const double value = 100.0 + double((r + i) % 24) +
                           0.25 * double((r * 31 + i * 7) % 13);
      Check(engine.InsertFact(bases[i], t, value), "insert");
    }
  }
}

// ---- Part 1: footprint ---------------------------------------------------

struct FootprintRow {
  std::size_t records = 0;
  std::size_t wal_bytes = 0;
  std::size_t segment_bytes = 0;
};

FootprintRow BenchFootprint(std::size_t rounds) {
  const std::string dir = FreshDir();
  EngineOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kNone;
  auto engine = F2dbEngine::Open(BenchGraph(), options);
  Check(engine.status(), "open");
  RunInserts(*engine.value(), rounds);

  FootprintRow row;
  // The WAL cost of this history: bytes appended for the insert records
  // (the whole log is inserts at this point — no catalog, no checkpoint).
  row.wal_bytes = engine.value()->stats().wal_bytes;
  Check(engine.value()->CompactNow(), "compact");
  const EngineStats stats = engine.value()->stats();
  row.records = stats.segment_records_sealed;
  row.segment_bytes = stats.segment_live_bytes;
  engine.value().reset();
  RemoveTree(dir);
  return row;
}

// ---- Part 2: recovery ----------------------------------------------------

struct RecoveryRow {
  std::size_t records = 0;
  double wal_ms = 0.0;      // replay everything through maintenance
  double compact_ms = 0.0;  // bulk-load segments + tail replay
};

double ReopenMs(const EngineOptions& options) {
  auto reopened = F2dbEngine::Open(BenchGraph(), options);
  Check(reopened.status(), "reopen");
  const double ms = reopened.value()->stats().recovery_duration_ms;
  return ms;
}

RecoveryRow BenchRecovery(std::size_t rounds, bool compact) {
  const std::string dir = FreshDir();
  EngineOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kNone;
  std::size_t records = 0;
  {
    auto engine = F2dbEngine::Open(BenchGraph(), options);
    Check(engine.status(), "open");
    RunInserts(*engine.value(), rounds);
    records = engine.value()->stats().inserts;
    if (compact) Check(engine.value()->CompactNow(), "compact");
    // Destruct without a checkpoint.
  }
  RecoveryRow row;
  row.records = records;
  (compact ? row.compact_ms : row.wal_ms) = ReopenMs(options);
  RemoveTree(dir);
  return row;
}

// ---- Part 3: retention ---------------------------------------------------

struct RetentionRow {
  std::size_t rounds_total = 0;
  std::size_t live_bytes = 0;
  std::size_t records_dropped = 0;
  std::size_t live_periods = 0;
};

std::vector<RetentionRow> BenchRetention(std::size_t rounds_per_cycle,
                                         std::size_t cycles) {
  const std::string dir = FreshDir();
  EngineOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kNone;
  options.retention_window = rounds_per_cycle;  // keep ~one cycle of raw data
  auto engine = F2dbEngine::Open(BenchGraph(), options);
  Check(engine.status(), "open");
  std::vector<RetentionRow> rows;
  for (std::size_t c = 1; c <= cycles; ++c) {
    RunInserts(*engine.value(), rounds_per_cycle);
    Check(engine.value()->CompactNow(), "compact");
    const EngineStats stats = engine.value()->stats();
    RetentionRow row;
    row.rounds_total = c * rounds_per_cycle;
    row.live_bytes = stats.segment_live_bytes;
    row.records_dropped = stats.retention_records_dropped;
    const NodeId base = engine.value()->graph().base_nodes()[0];
    row.live_periods = engine.value()->snapshot()->graph->series(base).size();
    rows.push_back(row);
  }
  engine.value().reset();
  RemoveTree(dir);
  return rows;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  PrintHeader("Sealed-segment footprint vs raw WAL bytes",
              "storage lifecycle (DESIGN.md section 13)",
              "records,wal_mib,segment_mib,compression_x");
  const std::vector<std::size_t> footprint_rounds =
      quick ? std::vector<std::size_t>{250}
            : std::vector<std::size_t>{1000, 4000, 16000};
  for (const std::size_t rounds : footprint_rounds) {
    const FootprintRow row = BenchFootprint(rounds);
    std::printf("%zu,%.2f,%.2f,%.1f\n", row.records,
                double(row.wal_bytes) / (1024.0 * 1024.0),
                double(row.segment_bytes) / (1024.0 * 1024.0),
                double(row.wal_bytes) / double(row.segment_bytes));
  }

  PrintHeader("Recovery: WAL replay vs segment bulk-load",
              "storage lifecycle (DESIGN.md section 13)",
              "records,wal_replay_ms,segment_ms,speedup_x");
  const std::vector<std::size_t> recovery_rounds =
      quick ? std::vector<std::size_t>{250}
            : std::vector<std::size_t>{1000, 4000, 16000};
  for (const std::size_t rounds : recovery_rounds) {
    const RecoveryRow wal = BenchRecovery(rounds, /*compact=*/false);
    const RecoveryRow seg = BenchRecovery(rounds, /*compact=*/true);
    std::printf("%zu,%.2f,%.2f,%.1f\n", wal.records, wal.wal_ms,
                seg.compact_ms, wal.wal_ms / seg.compact_ms);
  }

  PrintHeader("Retention bounds live segment bytes",
              "storage lifecycle (DESIGN.md section 13)",
              "rounds_total,live_kib,records_dropped,live_periods");
  const std::size_t cycle = quick ? 100 : 1000;
  for (const RetentionRow& row : BenchRetention(cycle, quick ? 3 : 6)) {
    std::printf("%zu,%.1f,%zu,%zu\n", row.rounds_total,
                double(row.live_bytes) / 1024.0, row.records_dropped,
                row.live_periods);
  }
  return 0;
}

}  // namespace
}  // namespace f2db::bench

int main(int argc, char** argv) { return f2db::bench::Main(argc, argv); }
