// E1 — Figure 7 (a)-(d): Accuracy Analysis.
//
// For each data set (Tourism, Sales, Energy stand-ins and Gen10k) this
// bench builds a configuration with every approach of Section VI-B plus
// the advisor and prints forecast error (mean SMAPE) and the number of
// models in the final configuration — the dark/light bar pairs of
// Figure 7. Combine is skipped on Gen10k, as in the paper (its
// reconciliation takes too long for 10k base series).

#include <cstdio>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunDataSet(const DataSet& data, bool include_combine,
                std::size_t gen_threads) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));

  DirectBuilder direct;
  BottomUpBuilder bottom_up;
  TopDownBuilder top_down;
  CombineBuilder combine;
  GreedyBuilder greedy;
  AdvisorOptions advisor_options = BenchAdvisorOptions();
  advisor_options.num_threads = gen_threads;
  AdvisorBuilder advisor(advisor_options);

  std::vector<ConfigurationBuilder*> builders{&direct, &bottom_up, &top_down};
  if (include_combine) builders.push_back(&combine);
  builders.push_back(&greedy);
  builders.push_back(&advisor);

  for (ConfigurationBuilder* builder : builders) {
    const ApproachRow row = RunBuilder(*builder, evaluator, factory);
    if (!row.ok) {
      std::printf("%s,%s,skipped,%s\n", data.name.c_str(),
                  row.approach.c_str(), row.note.c_str());
      continue;
    }
    std::printf("%s,%s,%.4f,%zu,%.3f\n", data.name.c_str(),
                row.approach.c_str(), row.error, row.num_models,
                row.build_seconds);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E1 accuracy analysis", "Figure 7(a)-(d)",
              "dataset,approach,error,num_models,build_seconds");

  if (auto tourism = MakeTourism(); tourism.ok()) {
    RunDataSet(tourism.value(), /*include_combine=*/true, 0);
  }
  if (auto sales = MakeSales(); sales.ok()) {
    RunDataSet(sales.value(), /*include_combine=*/true, 0);
  }
  if (auto energy = MakeEnergy(); energy.ok()) {
    RunDataSet(energy.value(), /*include_combine=*/true, 0);
  }
  if (auto gen = MakeGenX(10000); gen.ok()) {
    RunDataSet(gen.value(), /*include_combine=*/false, 0);
  }
  return 0;
}
