// E3 — Figure 8(b): Influence of the indicator size |I|.
//
// Runs the advisor with |I| fixed to 20..100% of the other graph nodes and
// reports the final configuration error. Real-data stand-ins should show
// the error falling as more derivation possibilities are considered (the
// steepest drop first, since nearby nodes are included first), while the
// uncorrelated GenX data is nearly flat — exactly the paper's Figure 8(b).

#include <cstdio>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunDataSet(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));
  const std::size_t max_size = data.graph.num_nodes() - 1;

  for (int percent = 20; percent <= 100; percent += 20) {
    AdvisorOptions options = BenchAdvisorOptions();
    options.indicator_size =
        std::max<std::size_t>(1, max_size * static_cast<std::size_t>(percent) / 100);
    AdvisorBuilder advisor(options);
    const ApproachRow row = RunBuilder(advisor, evaluator, factory);
    std::printf("%s,%d,%.4f,%zu\n", data.name.c_str(), percent, row.error,
                row.num_models);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E3 indicator size", "Figure 8(b)",
              "dataset,indicator_size_percent,error,num_models");
  if (auto tourism = MakeTourism(); tourism.ok()) RunDataSet(tourism.value());
  if (auto sales = MakeSales(); sales.ok()) RunDataSet(sales.value());
  if (auto energy = MakeEnergy(); energy.ok()) RunDataSet(energy.value());
  if (auto gen = MakeGenX(1000); gen.ok()) RunDataSet(gen.value());
  return 0;
}
