// Micro-benchmarks (google-benchmark) for the engine's hot paths: query
// parsing, node resolution, scheme-based forecasting, incremental model
// updates, and graph time advance. These complement the figure benches
// with statistically robust per-operation latencies.

#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/advisor_builder.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "engine/engine.h"
#include "ts/exponential_smoothing.h"

namespace f2db::bench {
namespace {

/// Engine loaded with an advisor configuration over a Gen1000 cube; built
/// once and shared across benchmarks.
F2dbEngine& SharedEngine() {
  static F2dbEngine* engine = [] {
    auto data = MakeGenX(1000, 4, 48);
    ConfigurationEvaluator evaluator(data.value().graph, 0.8);
    ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));
    AdvisorBuilder advisor(BenchAdvisorOptions());
    auto built = advisor.Build(evaluator, factory);
    auto engine_data = MakeGenX(1000, 4, 48);
    auto* e = new F2dbEngine(std::move(engine_data.value().graph));
    const Status loaded =
        e->LoadConfiguration(built.value().configuration, evaluator);
    (void)loaded;
    return e;
  }();
  return *engine;
}

void BM_ParseForecastQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT time, SUM(sales) FROM facts WHERE level1 = 'L1_3' GROUP BY "
      "time AS OF now() + '5'";
  for (auto _ : state) {
    auto query = ParseForecastQuery(sql);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseForecastQuery);

void BM_ResolveNode(benchmark::State& state) {
  F2dbEngine& engine = SharedEngine();
  const std::vector<DimensionFilter> filters{{"level1", "L1_3"}};
  for (auto _ : state) {
    auto node = engine.ResolveNode(filters);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_ResolveNode);

void BM_ForecastQuery(benchmark::State& state) {
  F2dbEngine& engine = SharedEngine();
  Rng rng(5);
  const std::size_t n = engine.graph().num_nodes();
  for (auto _ : state) {
    const NodeId node = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    auto forecast = engine.ForecastNode(node, 1);
    benchmark::DoNotOptimize(forecast);
  }
}
BENCHMARK(BM_ForecastQuery);

void BM_ForecastQueryHorizon(benchmark::State& state) {
  F2dbEngine& engine = SharedEngine();
  const NodeId top = engine.graph().top_node();
  for (auto _ : state) {
    auto forecast = engine.ForecastNode(top, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(forecast);
  }
}
BENCHMARK(BM_ForecastQueryHorizon)->Arg(1)->Arg(12)->Arg(96);

void BM_ModelIncrementalUpdate(benchmark::State& state) {
  auto model = ExponentialSmoothingModel::HoltWintersAdditive(12);
  std::vector<double> history(120);
  for (std::size_t i = 0; i < history.size(); ++i) {
    history[i] = 100.0 + 10.0 * std::sin(static_cast<double>(i) / 12.0);
  }
  const Status fitted = model->Fit(TimeSeries(history));
  (void)fitted;
  double value = 100.0;
  for (auto _ : state) {
    model->Update(value);
    value += 0.1;
  }
}
BENCHMARK(BM_ModelIncrementalUpdate);

void BM_GraphAdvanceTime(benchmark::State& state) {
  auto data = MakeGenX(static_cast<std::size_t>(state.range(0)), 4, 48);
  TimeSeriesGraph graph = std::move(data.value().graph);
  const std::vector<double> values(graph.num_base_nodes(), 1.0);
  for (auto _ : state) {
    const Status advanced = graph.AdvanceTime(values);
    benchmark::DoNotOptimize(advanced);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.num_nodes()));
}
BENCHMARK(BM_GraphAdvanceTime)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace f2db::bench

BENCHMARK_MAIN();
