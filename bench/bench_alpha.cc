// E6/E7 — Figures 8(e) and 8(f): Influence of the acceptance parameter
// alpha.
//
// Runs the advisor with alpha pinned to each value in {0.1 .. 1.0}
// (initial == final, so the whole run uses one acceptance trade-off) and
// reports the configuration error (8(e)) and the number of models relative
// to the node count (8(f)). The paper's findings to reproduce: the largest
// error drop happens at small alpha (most beneficial models first);
// alpha = 0.5 is already close to the best error with under ~15% of the
// models; even alpha = 1 uses well under half of all possible models.

#include <cstdio>

#include "bench/bench_util.h"

namespace f2db::bench {
namespace {

void RunDataSet(const DataSet& data) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));
  for (int alpha10 = 1; alpha10 <= 10; ++alpha10) {
    const double alpha = alpha10 / 10.0;
    AdvisorOptions options = BenchAdvisorOptions();
    options.initial_alpha = alpha;
    options.final_alpha = alpha;
    AdvisorBuilder advisor(options);
    const ApproachRow row = RunBuilder(advisor, evaluator, factory);
    const double relative_models =
        static_cast<double>(row.num_models) /
        static_cast<double>(data.graph.num_nodes());
    std::printf("%s,%.1f,%.4f,%zu,%.3f\n", data.name.c_str(), alpha, row.error,
                row.num_models, relative_models);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E6/E7 alpha sweep", "Figures 8(e) and 8(f)",
              "dataset,alpha,error,num_models,relative_models");
  if (auto tourism = MakeTourism(); tourism.ok()) RunDataSet(tourism.value());
  if (auto sales = MakeSales(); sales.ok()) RunDataSet(sales.value());
  if (auto energy = MakeEnergy(3, 504); energy.ok()) RunDataSet(energy.value());
  if (auto gen = MakeGenX(1000); gen.ok()) RunDataSet(gen.value());
  return 0;
}
