// E9 — Figure 9(b): Forecast query runtime in F2DB under maintenance load.
//
// Loads an advisor configuration (alpha = 0.5 and alpha = 1.0) for a GenX
// cube into the engine, then interleaves forecast queries with inserts of
// new time series values over 10 periods, varying the query/insert ratio
// from 1 to 10. Reported: the average runtime of a single forecast query.
// Expected shape (paper): latency is microseconds (models are precomputed,
// no base-data access), the alpha = 1.0 configuration is slower than
// alpha = 0.5 (more models to maintain), and latency falls as the ratio
// grows (maintenance is amortized over more queries).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/engine.h"

namespace f2db::bench {
namespace {

constexpr std::size_t kNumBase = 1000;
constexpr std::size_t kPeriods = 10;

void RunConfig(double alpha) {
  auto data = MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
  if (!data.ok()) return;
  ConfigurationEvaluator evaluator(data.value().graph, 0.8);
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(12));

  AdvisorOptions options = BenchAdvisorOptions();
  options.initial_alpha = alpha;
  options.final_alpha = alpha;
  AdvisorBuilder advisor(options);
  auto built = advisor.Build(evaluator, factory);
  if (!built.ok()) {
    std::printf("alpha=%.1f advisor failed: %s\n", alpha,
                built.status().ToString().c_str());
    return;
  }

  for (std::size_t ratio = 1; ratio <= 10; ++ratio) {
    // Fresh engine (and fresh data) per ratio so maintenance state resets.
    auto engine_data = MakeGenX(kNumBase, /*seed=*/4, /*length=*/48);
    EngineOptions engine_options;
    engine_options.reestimate_after_updates = 3;  // threshold invalidation
    F2dbEngine engine(std::move(engine_data.value().graph), engine_options);
    if (!engine.LoadConfiguration(built.value().configuration, evaluator)
             .ok()) {
      continue;
    }

    Rng rng(99 + ratio);
    const std::size_t num_nodes = engine.graph().num_nodes();
    const std::vector<NodeId> base_nodes = engine.graph().base_nodes();

    for (std::size_t period = 0; period < kPeriods; ++period) {
      const std::int64_t t =
          engine.graph().series(base_nodes[0]).end_time();
      // One insert per base series (150k total inserts in the paper's
      // setup; scaled to the cube size here).
      for (NodeId base : base_nodes) {
        const TimeSeries& series = engine.graph().series(base);
        const double next =
            series[series.size() - 1] * (1.0 + rng.Gaussian(0.0, 0.02));
        (void)engine.InsertFact(base, t, next);
      }
      // ratio forecast queries per insert.
      const std::size_t queries = ratio * base_nodes.size();
      for (std::size_t q = 0; q < queries; ++q) {
        const NodeId node = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<std::int64_t>(num_nodes) - 1));
        (void)engine.ForecastNode(node, 1);
      }
    }

    const EngineStats stats = engine.stats();
    const double avg_micros =
        stats.queries == 0
            ? 0.0
            : 1e6 * stats.total_query_seconds / static_cast<double>(stats.queries);
    std::printf("%.1f,%zu,%zu,%zu,%zu,%.3f\n", alpha, ratio, stats.queries,
                stats.inserts, stats.reestimates, avg_micros);
  }
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db::bench;
  PrintHeader("E9 forecast query runtime", "Figure 9(b)",
              "alpha,query_insert_ratio,queries,inserts,reestimates,"
              "avg_query_micros");
  RunConfig(0.5);
  RunConfig(1.0);
  return 0;
}
