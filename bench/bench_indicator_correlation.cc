// E2 — Figure 8(a): Indicator Accuracy.
//
// "We analyzed the correlation between the indicators and the real
// forecast errors for two selected data sets. Ideally the indicator and
// error values should be exactly the same and positioned on the straight
// line." This bench samples derivation schemes s -> t on the Sales and
// Tourism stand-ins, prints (real error, indicator) pairs, and reports the
// Pearson correlation per data set.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "core/indicators.h"
#include "math/stats.h"

namespace f2db::bench {
namespace {

void RunDataSet(const DataSet& data, std::size_t num_pairs, Rng& rng) {
  ConfigurationEvaluator evaluator(data.graph, 0.8);
  IndicatorComputer indicators(evaluator, IndicatorOptions{});
  ModelFactory factory(ModelSpec::TripleExponentialSmoothing(data.season));

  std::vector<double> indicator_values;
  std::vector<double> real_errors;
  const std::size_t n = data.graph.num_nodes();
  std::size_t attempts = 0;
  while (indicator_values.size() < num_pairs && attempts < 20 * num_pairs) {
    ++attempts;
    const NodeId source = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    const NodeId target = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    if (source == target) continue;

    auto model = factory.CreateAndFit(evaluator.TrainSeries(source));
    if (!model.ok()) continue;
    const std::vector<double> forecast =
        model.value()->Forecast(evaluator.test_length());
    const double real = evaluator.SchemeError(DerivationScheme::Single(source),
                                              {&forecast}, target);
    const double indicator = indicators.Indicate(source, target);
    indicator_values.push_back(indicator);
    real_errors.push_back(real);
    std::printf("%s,%.4f,%.4f\n", data.name.c_str(), real, indicator);
  }
  std::printf("%s,pearson_r,%.4f\n", data.name.c_str(),
              PearsonCorrelation(real_errors, indicator_values));
}

}  // namespace
}  // namespace f2db::bench

int main() {
  using namespace f2db;
  using namespace f2db::bench;
  PrintHeader("E2 indicator accuracy", "Figure 8(a)",
              "dataset,real_error,indicator");
  Rng rng(81);
  if (auto sales = MakeSales(); sales.ok()) {
    RunDataSet(sales.value(), 60, rng);
  }
  if (auto tourism = MakeTourism(); tourism.ok()) {
    RunDataSet(tourism.value(), 60, rng);
  }
  return 0;
}
