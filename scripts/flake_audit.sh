#!/usr/bin/env bash
# Flake audit (satellite f): run the concurrency-sensitive suites —
# concurrent engine stress, thread pool, fault injection, and the TCP
# server integration tests — repeatedly under ThreadSanitizer until one
# fails or the repeat budget is exhausted. A test that cannot survive
# REPEATS back-to-back runs under tsan is flaky by definition and must be
# deflaked, not retried.
#
# Usage: scripts/flake_audit.sh [REPEATS]
#   REPEATS   repeats per test (default 50; CI uses the default)
#
# Writes a per-suite PASS/FAIL table to
# $BUILD_DIR/flake_audit_summary.txt and exits nonzero on any failure.

set -u -o pipefail

REPEATS="${1:-50}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build-tsan"
SUMMARY="$BUILD_DIR/flake_audit_summary.txt"

# The audit surface: every suite the tsan preset covers, split so the
# summary attributes a failure to a suite rather than to "the run".
SUITES=(
  "Concurrent"
  "ThreadPool"
  "FaultInjection"
  "ServerIntegration"
)

cd "$REPO_ROOT"

echo "== flake audit: configuring tsan preset =="
cmake --preset tsan >/dev/null
echo "== flake audit: building =="
cmake --build --preset tsan -j "$(nproc)" >/dev/null

: > "$SUMMARY"
overall=0
for suite in "${SUITES[@]}"; do
  echo "== flake audit: $suite x$REPEATS under tsan =="
  if (cd "$BUILD_DIR" && \
      TSAN_OPTIONS="halt_on_error=1:suppressions=$REPO_ROOT/tsan.supp" \
      ctest -R "$suite" --repeat "until-fail:$REPEATS" \
            --output-on-failure 2>&1 | tail -5); then
    echo "PASS  $suite (x$REPEATS)" >> "$SUMMARY"
  else
    echo "FAIL  $suite (x$REPEATS)" >> "$SUMMARY"
    overall=1
  fi
done

echo "== flake audit summary =="
cat "$SUMMARY"
exit "$overall"
